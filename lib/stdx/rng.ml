type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 output scrambler. *)
let scramble z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* splitmix64 core step: advance by the golden gamma and scramble. *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  scramble t.state

let int64 = next_int64

let split t =
  let seed = next_int64 t in
  { state = seed }

(* A gamma distinct from [golden_gamma] keeps derived streams off the
   parent's own state trajectory. *)
let derive_gamma = 0xD1B54A32D192ED03L

let derive t idx =
  if idx < 0 then invalid_arg "Rng.derive: negative index";
  let salt = scramble (Int64.mul (Int64.of_int (idx + 1)) derive_gamma) in
  { state = scramble (Int64.logxor t.state salt) }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Mask to the native non-negative range; Int64.to_int alone can wrap
     a 63-bit value negative. *)
  let r = Int64.to_int (next_int64 t) land max_int in
  r mod bound

let float t bound =
  (* 53 random bits mapped to [0,1). *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  let unit = Int64.to_float bits /. 9007199254740992.0 in
  unit *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement t k arr =
  let n = Array.length arr in
  if k > n then invalid_arg "Rng.sample_without_replacement: k > length";
  let idx = Array.init n (fun i -> i) in
  (* Partial Fisher-Yates: only the first [k] slots need to be drawn. *)
  for i = 0 to k - 1 do
    let j = i + int t (n - i) in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp
  done;
  Array.init k (fun i -> arr.(idx.(i)))

let exponential t ~mean =
  let u = float t 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0.0 then epsilon_float else u in
  -.mean *. log u
