(** Link-state advertisements.

    Each router originates one LSA describing its directly attached
    links.  A sequence number orders re-originations; receivers keep
    only the newest LSA per origin. *)

type t = {
  origin : int;                 (** originating router id *)
  seq : int;                    (** monotonically increasing per origin *)
  links : (int * float) list;   (** (neighbour, cost), sorted by neighbour *)
}

val make : origin:int -> seq:int -> links:(int * float) list -> t

val newer_than : t -> t -> bool
(** [newer_than a b] — same origin required; true when [a] supersedes
    [b]. *)

val pp : Format.formatter -> t -> unit
