(* Dimensions: 0 src addr, 1 dst addr, 2 sport, 3 dport, 4 proto.
   All ranges are inclusive [lo, hi] over non-negative ints. *)

let dims = 5

let dim_max = [| 0xFFFFFFFF; 0xFFFFFFFF; 65535; 65535; 255 |]

type node =
  | Leaf of Rule.t list (* ascending id *)
  | Cut of { dim : int; lo : int; width : int; children : node array }

type t = { root : node; rules : int; mutable nodes : int }

(* The rectangle a rule occupies in each dimension. *)
let rule_range (rule : Rule.t) dim =
  let d = rule.Rule.descriptor in
  let prefix_range (p : Netpkt.Addr.Prefix.t) =
    let size = if p.len >= 32 then 1 else 1 lsl (32 - p.len) in
    (p.base, p.base + size - 1)
  in
  let port_range = function
    | Descriptor.Any_port -> (0, 65535)
    | Descriptor.Port p -> (p, p)
    | Descriptor.Port_range (a, b) -> (a, b)
  in
  match dim with
  | 0 -> prefix_range d.Descriptor.src
  | 1 -> prefix_range d.Descriptor.dst
  | 2 -> port_range d.Descriptor.sport
  | 3 -> port_range d.Descriptor.dport
  | 4 -> (
    match d.Descriptor.proto with
    | Descriptor.Any_proto -> (0, 255)
    | Descriptor.Proto p -> (p, p))
  | _ -> invalid_arg "Dectree: bad dimension"

let flow_point (f : Netpkt.Flow.t) dim =
  match dim with
  | 0 -> f.Netpkt.Flow.src
  | 1 -> f.Netpkt.Flow.dst
  | 2 -> f.Netpkt.Flow.sport
  | 3 -> f.Netpkt.Flow.dport
  | 4 -> f.Netpkt.Flow.proto
  | _ -> invalid_arg "Dectree: bad dimension"

let overlaps (alo, ahi) (blo, bhi) = alo <= bhi && blo <= ahi

(* Number of distinct rule projections in a dimension within a region —
   the cut heuristic prefers the most discriminating dimension. *)
let distinct_projections rules region dim =
  let projections =
    List.filter_map
      (fun rule ->
        let r = rule_range rule dim in
        if overlaps r region.(dim) then Some r else None)
      rules
  in
  List.length (List.sort_uniq compare projections)

let n_cuts = 4

let build ?(binth = 8) ?(max_depth = 24) rules =
  let rules = List.sort (fun a b -> compare a.Rule.id b.Rule.id) rules in
  let t = { root = Leaf []; rules = List.length rules; nodes = 0 } in
  (* Hard cap on tree size: wildcard-heavy rules replicate into many
     children, and without a budget the tree can grow until memory
     runs out.  Past the budget remaining regions become leaves
     (lookups degrade to short linear scans, correctness unaffected). *)
  let node_budget = 1024 + (64 * List.length rules) in
  let rec make rules region depth ~useless =
    t.nodes <- t.nodes + 1;
    if List.length rules <= binth || depth >= max_depth || t.nodes > node_budget
    then Leaf rules
    else begin
      (* Pick the dimension whose rule projections are most varied. *)
      let best_dim = ref 0 and best_score = ref (-1) in
      for dim = 0 to dims - 1 do
        let lo, hi = region.(dim) in
        if hi > lo then begin
          let score = distinct_projections rules region dim in
          if score > !best_score then begin
            best_score := score;
            best_dim := dim
          end
        end
      done;
      let dim = !best_dim in
      let lo, hi = region.(dim) in
      let span = hi - lo + 1 in
      if !best_score <= 1 || span < n_cuts then Leaf rules
      else begin
        let width = (span + n_cuts - 1) / n_cuts in
        let child_rules =
          Array.init n_cuts (fun i ->
              let clo = lo + (i * width) in
              let chi = min hi (clo + width - 1) in
              List.filter (fun r -> overlaps (rule_range r dim) (clo, chi)) rules)
        in
        (* Cuts that fail to shed rules are tolerated for a few
           levels — equal-width cuts often need to zoom in before
           skewed rule sets start separating — but an unbounded run of
           them would replicate rules without limit. *)
        let max_child =
          Array.fold_left (fun acc l -> max acc (List.length l)) 0 child_rules
        in
        let useless' =
          if max_child >= List.length rules then useless + 1 else 0
        in
        if useless' > 8 then Leaf rules
        else begin
          let children =
            Array.mapi
              (fun i rules_i ->
                let clo = lo + (i * width) in
                let chi = min hi (clo + width - 1) in
                let region' = Array.copy region in
                region'.(dim) <- (clo, chi);
                make rules_i region' (depth + 1) ~useless:useless')
              child_rules
          in
          Cut { dim; lo; width; children }
        end
      end
    end
  in
  let region = Array.init dims (fun d -> (0, dim_max.(d))) in
  let root = make rules region 0 ~useless:0 in
  { t with root }

let first_match t flow =
  let rec search = function
    | Leaf rules ->
      List.find_opt (fun r -> Descriptor.matches r.Rule.descriptor flow) rules
    | Cut { dim; lo; width; children } ->
      let v = flow_point flow dim in
      let idx = (v - lo) / width in
      if idx < 0 || idx >= Array.length children then None
      else search children.(idx)
  in
  search t.root

let rule_count t = t.rules
let node_count t = t.nodes

let depth t =
  let rec go = function
    | Leaf _ -> 1
    | Cut { children; _ } -> 1 + Array.fold_left (fun acc c -> max acc (go c)) 0 children
  in
  go t.root
