(** Seeded random connected graphs.

    Used by property tests (Dijkstra vs Bellman-Ford, OSPF/DV
    convergence) and available to users who want topologies beyond the
    paper's two: a uniform random spanning tree guarantees
    connectivity, then extra edges add path diversity. *)

val connected :
  rng:Stdx.Rng.t -> nodes:int -> ?extra_edges:int -> ?max_cost:int -> unit ->
  Graph.t
(** [connected ~rng ~nodes ()] — [extra_edges] (default [nodes/2])
    additional random links beyond the spanning tree (silently fewer
    if the graph saturates); integer link costs drawn uniformly from
    [\[1, max_cost\]] (default 5).  Raises [Invalid_argument] when
    [nodes < 1]. *)

val topology :
  rng:Stdx.Rng.t -> nodes:int -> ?extra_edges:int -> ?max_cost:int ->
  ?name:string -> unit -> Topology.t
(** Same graph wrapped as an all-core topology. *)
