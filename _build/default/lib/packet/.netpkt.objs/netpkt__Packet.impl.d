lib/packet/packet.ml: Format Header
