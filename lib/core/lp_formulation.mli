(** The load-balancing linear programs (Sec. III.C).

    Both formulations minimise the largest load factor λ subject to
    flow conservation through every policy's middlebox chain and
    per-middlebox capacity λ·C(x):

    - {!solve_simplified} is Eq. (2): variables t_{e,p}(x,y) aggregate
      traffic over sources and destinations, keeping the variable count
      (and the controller→middlebox configuration volume) small.  This
      is the formulation the evaluation runs.
    - {!solve_exact} is Eq. (1): variables t_{s,d,p}(x,y) keep
      per-source/destination resolution.  Exponentially more variables;
      used on small instances and in the formulation-comparison
      ablation.

    Implementation notes, documented in DESIGN.md: (a) exit variables
    are aggregated over destinations — which destination a last-hop
    middlebox forwards to never affects any middlebox load, so this is
    exact; (b) with [group_sources] (default), proxies with identical
    candidate-set fingerprints are aggregated into one LP source, which
    is load-exact because their entry constraints can be split back
    proportionally; it shrinks the Waxman-scale LPs by ~16x; (c) chains
    are walked positionally, so a function may not repeat within one
    action list (the paper's I_p(e,e') indicator has the same
    restriction); (d) capacities default to 1.0 and no λ ≤ 1 row is
    added unless [lambda_cap] is given, making λ read directly as the
    maximum per-middlebox volume. *)

type result = {
  lambda : float;          (** optimal largest load factor *)
  weights : Weights.t;     (** per-entity forwarding weights (aggregated) *)
  weights_sd : Weights_sd.t option;
      (** Eq. (1) only: the per-(source, destination) t_{s,d,p}(x,y)
          rows, the resolution the exact formulation pays for *)
  loads : float array;     (** predicted volume per middlebox id *)
  lp_vars : int;           (** LP size, for the formulation ablation *)
  lp_constraints : int;
  lp_pivots : int;         (** simplex pivots this solve performed *)
  lp_phase1_pivots : int;  (** of those, phase-1 (and drive-out) pivots *)
  lp_warm_used : bool;     (** a supplied warm basis carried the solve *)
  lp_fallback : bool;      (** a warm basis was supplied but the cold
                               two-phase path ran *)
  lp_snapshot : Lp.Model.snapshot option;
      (** the solve's basis + row cache, to pass as [?warm] next time *)
}

val solve_simplified :
  Candidate.t ->
  rules:Policy.Rule.t list ->
  traffic:Measurement.t ->
  ?group_sources:bool ->
  ?lambda_cap:float ->
  ?warm:Lp.Model.snapshot ->
  unit ->
  (result, string) Stdlib.result

val solve_exact :
  Candidate.t ->
  rules:Policy.Rule.t list ->
  traffic:Measurement.t ->
  ?lambda_cap:float ->
  ?warm:Lp.Model.snapshot ->
  unit ->
  (result, string) Stdlib.result
(** Returns both the per-(s,d) rows ([weights_sd]) for faithful Eq. (1)
    enforcement and their aggregation over sources and destinations
    ([weights]) as the fallback for unmeasured pairs. *)
