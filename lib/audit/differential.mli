(** Differential oracle between two load vectors.

    The packet-level simulator ([Sim.Pktsim]) and the analytic
    flow-level expectation ([Sim.Flowsim]) answer the same question —
    how many packets each middlebox processes — by entirely different
    mechanisms.  On a fault-free static configuration the per-flow
    steering is deterministic, so the two must agree exactly; the
    oracle compares the vectors and reports the worst deviation, with
    tolerances for configurations (faults, web-proxy cache serving)
    where agreement is only statistical. *)

type verdict = {
  ok : bool;
  max_abs : float;   (** worst absolute per-entry deviation *)
  max_rel : float;   (** worst relative deviation (scaled by the larger) *)
  worst : int;       (** index of the worst absolute deviation, -1 if none *)
  detail : string;
}

val compare :
  ?abs_tol:float ->
  ?rel_tol:float ->
  expected:float array ->
  observed:float array ->
  unit ->
  verdict
(** A vector pair passes when the worst absolute deviation is within
    [abs_tol] {e or} the worst relative deviation is within [rel_tol]
    (both default [1e-9], i.e. exact agreement up to rounding).
    Length mismatch always fails. *)
