lib/dvr/router.ml: Array Hashtbl List
