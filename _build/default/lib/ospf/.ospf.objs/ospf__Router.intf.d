lib/ospf/router.mli: Lsa Netgraph
