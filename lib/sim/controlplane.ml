type report = {
  controller_router : int;
  devices_managed : int;
  routers_total : int;
  config_messages : int;
  config_bytes : int;
  config_byte_hops : int;
  time_to_configure : float;
  report_bytes_per_epoch : int;
}

let bytes_per_policy_row = 16
let bytes_per_candidate = 4
let bytes_per_weight_cell = 12
let bytes_per_measurement_cell = 12

(* Flat device indexing shared by the live control plane and the audit
   layer: proxies first, then middleboxes.  A "device" is anything the
   controller pushes configuration to. *)
let device_count (dep : Sdm.Deployment.t) =
  Array.length dep.Sdm.Deployment.proxies
  + Array.length dep.Sdm.Deployment.middleboxes

let device_of_entity (dep : Sdm.Deployment.t) = function
  | Mbox.Entity.Proxy i -> i
  | Mbox.Entity.Middlebox i -> Array.length dep.Sdm.Deployment.proxies + i

let entity_of_device (dep : Sdm.Deployment.t) dev =
  let n_proxies = Array.length dep.Sdm.Deployment.proxies in
  if dev < 0 || dev >= device_count dep then
    invalid_arg "Controlplane.entity_of_device: device out of range";
  if dev < n_proxies then Mbox.Entity.Proxy dev
  else Mbox.Entity.Middlebox (dev - n_proxies)

let default_router (dep : Sdm.Deployment.t) =
  let topo = dep.Sdm.Deployment.topo in
  match Netgraph.Topology.gateways topo with
  | gw :: _ -> gw
  | [] -> List.hd (Netgraph.Topology.cores topo)

let replica_routers (dep : Sdm.Deployment.t) ~primary ~n =
  if n < 1 then invalid_arg "Controlplane.replica_routers: n must be positive";
  let topo = dep.Sdm.Deployment.topo in
  (* Deterministic placement: the primary keeps its router; standbys
     take the remaining gateways in order, then the cores — transit
     routers with the best reach, and a stable order whatever the
     seed did to the access layer. *)
  let pool =
    List.filter
      (fun r -> r <> primary)
      (Netgraph.Topology.gateways topo @ Netgraph.Topology.cores topo)
  in
  let rec take k = function
    | _ when k = 0 -> []
    | [] ->
      invalid_arg
        (Printf.sprintf
           "Controlplane.replica_routers: %d replicas but only %d distinct \
            transit routers"
           n
           (n - k))
    | r :: rest -> r :: take (k - 1) rest
  in
  primary :: take (n - 1) pool

(* Per-entity configuration size — also what the live control plane
   charges per config-push message. *)
let entity_bytes (c : Sdm.Controller.t) entity =
  let dep = c.Sdm.Controller.deployment in
  let functions = Sdm.Deployment.functions dep in
  let weights =
    match c.Sdm.Controller.strategy with
    | Sdm.Strategy.Load_balanced w -> Some w
    | _ -> None
  in
  let policy_rows = List.length (Sdm.Controller.policy_table_for c entity) in
  let candidates =
    List.fold_left
      (fun acc nf ->
        match Sdm.Candidate.get c.Sdm.Controller.candidates entity nf with
        | members -> acc + List.length members
        | exception Invalid_argument _ -> acc
        | exception Not_found -> acc)
      0 functions
  in
  let weight_cells =
    match weights with
    | None -> 0
    | Some w ->
      List.fold_left
        (fun acc rule ->
          List.fold_left
            (fun acc nf ->
              match
                Sdm.Weights.find w entity ~rule:rule.Policy.Rule.id ~nf
              with
              | Some row -> acc + Array.length row
              | None -> acc)
            acc functions)
        0 c.Sdm.Controller.rules
  in
  (policy_rows * bytes_per_policy_row)
  + (candidates * bytes_per_candidate)
  + (weight_cells * bytes_per_weight_cell)

let price ?controller_router ?(link_delay = 1.0) (c : Sdm.Controller.t) ~traffic =
  let dep = c.Sdm.Controller.deployment in
  let topo = dep.Sdm.Deployment.topo in
  let controller_router =
    match controller_router with
    | Some r -> r
    | None -> default_router dep
  in
  let entities =
    List.init (Array.length dep.Sdm.Deployment.proxies) (fun i ->
        Mbox.Entity.Proxy i)
    @ List.init (Array.length dep.Sdm.Deployment.middleboxes) (fun i ->
          Mbox.Entity.Middlebox i)
  in
  let entity_bytes entity = entity_bytes c entity in
  let hops entity =
    let r = Sdm.Deployment.entity_router dep entity in
    (* +1 for the last hop from the attachment router to the device. *)
    int_of_float dep.Sdm.Deployment.dist.(controller_router).(r) + 1
  in
  let config_bytes = ref 0 and byte_hops = ref 0 and max_hops = ref 0 in
  List.iter
    (fun e ->
      let b = entity_bytes e and h = hops e in
      config_bytes := !config_bytes + b;
      byte_hops := !byte_hops + (b * h);
      if h > !max_hops then max_hops := h)
    entities;
  (* Measurement reports: each proxy ships its non-zero cells. *)
  let report_bytes = ref 0 in
  List.iter
    (fun rule ->
      List.iter
        (fun (_, _, _) -> report_bytes := !report_bytes + bytes_per_measurement_cell)
        (Sdm.Measurement.pairs_for traffic ~rule:rule.Policy.Rule.id))
    c.Sdm.Controller.rules;
  {
    controller_router;
    devices_managed = List.length entities;
    routers_total = Netgraph.Graph.node_count topo.Netgraph.Topology.graph;
    config_messages = List.length entities;
    config_bytes = !config_bytes;
    config_byte_hops = !byte_hops;
    time_to_configure = float_of_int !max_hops *. link_delay;
    report_bytes_per_epoch = !report_bytes;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "controller at router %d@.devices managed: %d (an SDN controller would \
     manage all %d routers, per flow)@.config push: %d messages, %d bytes, %d \
     byte-hops, done in %.1f time units@.measurement reports: %d bytes per \
     epoch@."
    r.controller_router r.devices_managed r.routers_total r.config_messages
    r.config_bytes r.config_byte_hops r.time_to_configure
    r.report_bytes_per_epoch
