(** Distance-vector routing over the event engine.

    Drives one {!Router.t} per topology node: initial self-route
    announcements at jittered start times, then triggered updates —
    a router whose vector changed schedules one batched advertisement
    to every neighbour after a short hold-down, which keeps message
    complexity polynomial.  The run ends when the event queue drains.

    The distances converge to exactly the shortest-path costs of the
    graph (tested against Dijkstra); next hops may differ from OSPF's
    on equal-cost ties, but every hop-by-hop walk realises an optimal
    path. *)

type stats = {
  messages : int;            (** advertisements sent on links *)
  convergence_time : float;
}

type result = {
  tables : Netgraph.Routing.table array;
  distances : float array array;
  stats : stats;
}

val converge :
  ?link_delay:float ->
  ?hold_down:float ->
  ?jitter_seed:int ->
  Netgraph.Topology.t ->
  result
(** [link_delay] defaults 1.0, [hold_down] 0.5. *)
