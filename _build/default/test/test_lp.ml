(* Tests for the LP substrate: the Model builder and the two-phase
   simplex.  Includes a brute-force vertex-enumeration oracle used by
   property tests on random small LPs. *)

let check_float = Alcotest.(check (float 1e-6))

(* --- Hand-checked instances ------------------------------------- *)

let test_trivial_min () =
  (* min x  s.t. x >= 3 *)
  let m = Lp.Model.create () in
  let x = Lp.Model.var m "x" in
  Lp.Model.add_constraint m [ (1.0, x) ] Lp.Model.Ge 3.0;
  Lp.Model.set_objective m [ (1.0, x) ];
  match Lp.Model.solve m with
  | Lp.Model.Optimal sol ->
    check_float "objective" 3.0 sol.Lp.Model.objective;
    check_float "x" 3.0 (Lp.Model.value sol x)
  | o -> Alcotest.failf "expected optimal, got %a" Lp.Model.pp_outcome o

let test_two_var () =
  (* min -x - 2y  s.t. x + y <= 4; x <= 2; y <= 3.  Optimum at (1,3): -7. *)
  let m = Lp.Model.create () in
  let x = Lp.Model.var m "x" and y = Lp.Model.var m "y" in
  Lp.Model.add_constraint m [ (1.0, x); (1.0, y) ] Lp.Model.Le 4.0;
  Lp.Model.add_constraint m [ (1.0, x) ] Lp.Model.Le 2.0;
  Lp.Model.add_constraint m [ (1.0, y) ] Lp.Model.Le 3.0;
  Lp.Model.set_objective m [ (-1.0, x); (-2.0, y) ];
  match Lp.Model.solve m with
  | Lp.Model.Optimal sol ->
    check_float "objective" (-7.0) sol.Lp.Model.objective;
    check_float "x" 1.0 (Lp.Model.value sol x);
    check_float "y" 3.0 (Lp.Model.value sol y)
  | o -> Alcotest.failf "expected optimal, got %a" Lp.Model.pp_outcome o

let test_equality () =
  (* min x + y  s.t. x + y = 5; x - y = 1.  Unique point (3,2): 5. *)
  let m = Lp.Model.create () in
  let x = Lp.Model.var m "x" and y = Lp.Model.var m "y" in
  Lp.Model.add_constraint m [ (1.0, x); (1.0, y) ] Lp.Model.Eq 5.0;
  Lp.Model.add_constraint m [ (1.0, x); (-1.0, y) ] Lp.Model.Eq 1.0;
  Lp.Model.set_objective m [ (1.0, x); (1.0, y) ];
  match Lp.Model.solve m with
  | Lp.Model.Optimal sol ->
    check_float "objective" 5.0 sol.Lp.Model.objective;
    check_float "x" 3.0 (Lp.Model.value sol x);
    check_float "y" 2.0 (Lp.Model.value sol y)
  | o -> Alcotest.failf "expected optimal, got %a" Lp.Model.pp_outcome o

let test_infeasible () =
  (* x <= 1 and x >= 2 cannot both hold. *)
  let m = Lp.Model.create () in
  let x = Lp.Model.var m "x" in
  Lp.Model.add_constraint m [ (1.0, x) ] Lp.Model.Le 1.0;
  Lp.Model.add_constraint m [ (1.0, x) ] Lp.Model.Ge 2.0;
  Lp.Model.set_objective m [ (1.0, x) ];
  match Lp.Model.solve m with
  | Lp.Model.Infeasible -> ()
  | o -> Alcotest.failf "expected infeasible, got %a" Lp.Model.pp_outcome o

let test_unbounded () =
  (* min -x  s.t. x >= 0 only. *)
  let m = Lp.Model.create () in
  let x = Lp.Model.var m "x" in
  Lp.Model.set_objective m [ (-1.0, x) ];
  match Lp.Model.solve m with
  | Lp.Model.Unbounded -> ()
  | o -> Alcotest.failf "expected unbounded, got %a" Lp.Model.pp_outcome o

let test_negative_rhs () =
  (* min x  s.t. -x <= -4  (i.e. x >= 4). *)
  let m = Lp.Model.create () in
  let x = Lp.Model.var m "x" in
  Lp.Model.add_constraint m [ (-1.0, x) ] Lp.Model.Le (-4.0);
  Lp.Model.set_objective m [ (1.0, x) ];
  match Lp.Model.solve m with
  | Lp.Model.Optimal sol -> check_float "x" 4.0 (Lp.Model.value sol x)
  | o -> Alcotest.failf "expected optimal, got %a" Lp.Model.pp_outcome o

let test_degenerate () =
  (* Redundant constraints stressing degenerate pivots. *)
  let m = Lp.Model.create () in
  let x = Lp.Model.var m "x" and y = Lp.Model.var m "y" in
  Lp.Model.add_constraint m [ (1.0, x); (1.0, y) ] Lp.Model.Le 1.0;
  Lp.Model.add_constraint m [ (1.0, x); (1.0, y) ] Lp.Model.Le 1.0;
  Lp.Model.add_constraint m [ (2.0, x); (2.0, y) ] Lp.Model.Le 2.0;
  Lp.Model.add_constraint m [ (1.0, x) ] Lp.Model.Le 1.0;
  Lp.Model.set_objective m [ (-1.0, x); (-1.0, y) ];
  match Lp.Model.solve m with
  | Lp.Model.Optimal sol -> check_float "objective" (-1.0) sol.Lp.Model.objective
  | o -> Alcotest.failf "expected optimal, got %a" Lp.Model.pp_outcome o

let test_redundant_equalities () =
  (* A duplicated equality leaves a redundant row in phase 1. *)
  let m = Lp.Model.create () in
  let x = Lp.Model.var m "x" and y = Lp.Model.var m "y" in
  Lp.Model.add_constraint m [ (1.0, x); (1.0, y) ] Lp.Model.Eq 2.0;
  Lp.Model.add_constraint m [ (2.0, x); (2.0, y) ] Lp.Model.Eq 4.0;
  Lp.Model.set_objective m [ (1.0, x) ];
  match Lp.Model.solve m with
  | Lp.Model.Optimal sol ->
    check_float "objective" 0.0 sol.Lp.Model.objective;
    check_float "sum" 2.0 (Lp.Model.value sol x +. Lp.Model.value sol y)
  | o -> Alcotest.failf "expected optimal, got %a" Lp.Model.pp_outcome o

let test_min_max_load_shape () =
  (* A miniature of the paper's LP: route volume 10 from s to two
     servers y1 (capacity 1) and y2 (capacity 4), minimising the max
     load factor lambda:
       min l  s.t.  t1 + t2 = 10;  t1 <= l*1;  t2 <= l*4.
     Optimum: l = 2, t1 = 2, t2 = 8. *)
  let m = Lp.Model.create () in
  let t1 = Lp.Model.var m "t1"
  and t2 = Lp.Model.var m "t2"
  and l = Lp.Model.var m "lambda" in
  Lp.Model.add_constraint m [ (1.0, t1); (1.0, t2) ] Lp.Model.Eq 10.0;
  Lp.Model.add_constraint m [ (1.0, t1); (-1.0, l) ] Lp.Model.Le 0.0;
  Lp.Model.add_constraint m [ (1.0, t2); (-4.0, l) ] Lp.Model.Le 0.0;
  Lp.Model.set_objective m [ (1.0, l) ];
  match Lp.Model.solve m with
  | Lp.Model.Optimal sol ->
    check_float "lambda" 2.0 (Lp.Model.value sol l);
    check_float "t1" 2.0 (Lp.Model.value sol t1);
    check_float "t2" 8.0 (Lp.Model.value sol t2)
  | o -> Alcotest.failf "expected optimal, got %a" Lp.Model.pp_outcome o

(* --- Brute-force oracle ------------------------------------------ *)

(* Enumerate basic solutions of {A x cmp b, x >= 0} for 2-variable
   LPs by intersecting all constraint-boundary pairs (including the
   axes) and keeping feasible points; the LP optimum, when bounded and
   feasible, is attained at one of them. *)
module Oracle = struct
  type row = { a : float; b : float; cmp : Lp.Model.cmp; rhs : float }

  let feasible rows (x, y) =
    x >= -1e-7 && y >= -1e-7
    && List.for_all
         (fun { a; b; cmp; rhs } ->
           let v = (a *. x) +. (b *. y) in
           match cmp with
           | Lp.Model.Le -> v <= rhs +. 1e-7
           | Lp.Model.Ge -> v >= rhs -. 1e-7
           | Lp.Model.Eq -> abs_float (v -. rhs) <= 1e-7)
         rows

  let intersect (a1, b1, c1) (a2, b2, c2) =
    let det = (a1 *. b2) -. (a2 *. b1) in
    if abs_float det < 1e-12 then None
    else Some (((c1 *. b2) -. (c2 *. b1)) /. det, ((a1 *. c2) -. (a2 *. c1)) /. det)

  let best rows ~cx ~cy =
    let lines =
      (0.0, 1.0, 0.0) :: (1.0, 0.0, 0.0)
      :: List.map (fun { a; b; rhs; _ } -> (a, b, rhs)) rows
    in
    let candidates =
      List.concat_map
        (fun l1 -> List.filter_map (fun l2 -> intersect l1 l2) lines)
        lines
    in
    List.fold_left
      (fun best pt ->
        if feasible rows pt then begin
          let x, y = pt in
          let v = (cx *. x) +. (cy *. y) in
          match best with Some b when b <= v -> best | _ -> Some v
        end
        else best)
      None candidates
end

let qcheck_vs_oracle =
  let open QCheck in
  let cmp_gen = Gen.oneofl [ Lp.Model.Le; Lp.Model.Ge ] in
  let row_gen =
    Gen.map4
      (fun a b cmp rhs -> { Oracle.a; b; cmp; rhs })
      (Gen.float_range (-5.0) 5.0)
      (Gen.float_range (-5.0) 5.0)
      cmp_gen
      (Gen.float_range 0.0 10.0)
  in
  let lp_gen =
    Gen.pair
      (Gen.list_size (Gen.int_range 1 5) row_gen)
      (Gen.pair (Gen.float_range (-3.0) 3.0) (Gen.float_range (-3.0) 3.0))
  in
  Test.make ~count:300 ~name:"simplex agrees with 2-var vertex enumeration"
    (make lp_gen)
    (fun (rows, (cx, cy)) ->
      let m = Lp.Model.create () in
      let x = Lp.Model.var m "x" and y = Lp.Model.var m "y" in
      List.iter
        (fun { Oracle.a; b; cmp; rhs } ->
          Lp.Model.add_constraint m [ (a, x); (b, y) ] cmp rhs)
        rows;
      Lp.Model.set_objective m [ (cx, x); (cy, y) ];
      match (Lp.Model.solve m, Oracle.best rows ~cx ~cy) with
      | Lp.Model.Optimal sol, Some oracle ->
        (* Allow sloppy tolerance: the oracle uses naive arithmetic. *)
        abs_float (sol.Lp.Model.objective -. oracle) < 1e-4
                                                       *. (1.0 +. abs_float oracle)
      | Lp.Model.Infeasible, None -> true
      | Lp.Model.Unbounded, _ ->
        (* The oracle cannot certify unboundedness; accept when it
           found no better bounded answer contradiction.  Verify by
           checking the simplex did not miss a finite optimum: for an
           unbounded LP every vertex value is an upper bound on
           nothing, so just accept. *)
        true
      | Lp.Model.Optimal _, None -> false
      | Lp.Model.Infeasible, Some _ -> false)

let qcheck_feasibility =
  let open QCheck in
  (* Random LPs in 4 variables: whenever the solver says Optimal, the
     reported point must satisfy every constraint. *)
  let term_gen = Gen.float_range (-4.0) 4.0 in
  let row_gen =
    Gen.map3
      (fun coefs cmp rhs -> (coefs, cmp, rhs))
      (Gen.array_size (Gen.return 4) term_gen)
      (Gen.oneofl [ Lp.Model.Le; Lp.Model.Ge; Lp.Model.Eq ])
      (Gen.float_range 0.0 8.0)
  in
  Test.make ~count:300 ~name:"optimal solutions satisfy all constraints"
    (make
       (Gen.pair
          (Gen.list_size (Gen.int_range 1 6) row_gen)
          (Gen.array_size (Gen.return 4) term_gen)))
    (fun (rows, cost) ->
      let m = Lp.Model.create () in
      let vars = Array.init 4 (fun i -> Lp.Model.var m (Printf.sprintf "x%d" i)) in
      List.iter
        (fun (coefs, cmp, rhs) ->
          let terms = Array.to_list (Array.mapi (fun i c -> (c, vars.(i))) coefs) in
          Lp.Model.add_constraint m terms cmp rhs)
        rows;
      Lp.Model.set_objective m
        (Array.to_list (Array.mapi (fun i c -> (c, vars.(i))) cost));
      match Lp.Model.solve m with
      | Lp.Model.Optimal sol ->
        List.for_all
          (fun (coefs, cmp, rhs) ->
            let v = ref 0.0 in
            Array.iteri (fun i c -> v := !v +. (c *. Lp.Model.value sol vars.(i))) coefs;
            match cmp with
            | Lp.Model.Le -> !v <= rhs +. 1e-5
            | Lp.Model.Ge -> !v >= rhs -. 1e-5
            | Lp.Model.Eq -> abs_float (!v -. rhs) <= 1e-5)
          rows
        && Array.for_all (fun var -> Lp.Model.value sol var >= -1e-7) vars
      | Lp.Model.Infeasible | Lp.Model.Unbounded -> true)

let suite =
  [
    Alcotest.test_case "trivial min" `Quick test_trivial_min;
    Alcotest.test_case "two variables" `Quick test_two_var;
    Alcotest.test_case "equalities" `Quick test_equality;
    Alcotest.test_case "infeasible" `Quick test_infeasible;
    Alcotest.test_case "unbounded" `Quick test_unbounded;
    Alcotest.test_case "negative rhs" `Quick test_negative_rhs;
    Alcotest.test_case "degenerate pivots" `Quick test_degenerate;
    Alcotest.test_case "redundant equalities" `Quick test_redundant_equalities;
    Alcotest.test_case "min-max load shape" `Quick test_min_max_load_shape;
    QCheck_alcotest.to_alcotest qcheck_vs_oracle;
    QCheck_alcotest.to_alcotest qcheck_feasibility;
  ]
