type t = Proxy of int | Middlebox of int

let compare = Stdlib.compare
let equal a b = compare a b = 0

let to_string = function
  | Proxy i -> Printf.sprintf "proxy%d" i
  | Middlebox i -> Printf.sprintf "mbox%d" i

let pp ppf t = Format.pp_print_string ppf (to_string t)

let hash_key = function Proxy i -> 2 * i | Middlebox i -> (2 * i) + 1
