test/test_dess.ml: Alcotest Dess List QCheck QCheck_alcotest
