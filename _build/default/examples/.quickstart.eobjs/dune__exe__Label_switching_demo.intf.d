examples/label_switching_demo.mli:
