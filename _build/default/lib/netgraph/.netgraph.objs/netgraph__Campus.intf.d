lib/netgraph/campus.mli: Topology
