lib/lp/simplex.mli:
