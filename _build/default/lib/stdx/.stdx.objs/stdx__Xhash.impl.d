lib/stdx/xhash.ml: Char Int64 List String
