lib/mbox/middlebox.ml: Format Netpkt Policy
