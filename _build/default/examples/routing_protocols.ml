(* Routing substrates side by side.

   The paper's networks "forward packets based on classical routing
   protocols such as OSPF and EIGRP" — this repo implements both
   families (link-state flooding in [Ospf], distance-vector exchange
   in [Dvr]) on the same event engine.  This example runs both to
   convergence on the campus and Waxman topologies, checks them
   against the global Dijkstra oracle, compares their message costs,
   and finishes with a live link failure that the link-state session
   reconverges around.

     dune exec examples/routing_protocols.exe *)

let check_topology name topo =
  Format.printf "== %s: %a ==@." name Netgraph.Topology.pp topo;
  let g = topo.Netgraph.Topology.graph in
  let n = Netgraph.Graph.node_count g in

  let ospf = Ospf.Protocol.converge topo in
  let oracle_tables = Netgraph.Routing.build_all g in
  let ospf_ok =
    Array.for_all2 (fun (a : int array) b -> a = b) ospf.Ospf.Protocol.tables
      oracle_tables
  in
  Format.printf "OSPF (link-state):    %6d messages, t=%5.1f, tables = oracle: %b@."
    ospf.Ospf.Protocol.stats.Ospf.Protocol.messages
    ospf.Ospf.Protocol.stats.Ospf.Protocol.convergence_time ospf_ok;

  let dvr = Dvr.Protocol.converge topo in
  let dvr_ok = ref true in
  for src = 0 to n - 1 do
    let oracle = (Netgraph.Dijkstra.run g src).Netgraph.Dijkstra.dist in
    for dst = 0 to n - 1 do
      if abs_float (dvr.Dvr.Protocol.distances.(src).(dst) -. oracle.(dst)) > 1e-6
      then dvr_ok := false
    done
  done;
  Format.printf
    "DV (EIGRP-style):     %6d messages, t=%5.1f, distances = oracle: %b@.@."
    dvr.Dvr.Protocol.stats.Dvr.Protocol.messages
    dvr.Dvr.Protocol.stats.Dvr.Protocol.convergence_time !dvr_ok;
  if not (ospf_ok && !dvr_ok) then exit 1

let () =
  check_topology "campus" (Netgraph.Campus.generate ~seed:17 ());
  check_topology "waxman" (Netgraph.Waxman.generate ~seed:17 ());

  (* A live failure: the link-state session heals around a lost link. *)
  let topo = Netgraph.Campus.generate ~seed:17 () in
  let session = Ospf.Session.start topo in
  let before = Ospf.Session.messages session in
  (* Fail the first core-to-gateway link (cores are dual-homed, so the
     network stays connected). *)
  let gw = List.hd (Netgraph.Topology.gateways topo) in
  let core = List.hd (Netgraph.Topology.cores topo) in
  Format.printf "== failing link %d -- %d (gateway-core) ==@." gw core;
  Ospf.Session.fail_link session gw core;
  let oracle = Netgraph.Routing.build_all (Ospf.Session.surviving_graph session) in
  let healed =
    Array.for_all2 (fun (a : int array) b -> a = b) (Ospf.Session.tables session)
      oracle
  in
  Format.printf
    "reconverged with %d extra LSA transmissions; tables = oracle on the \
     surviving graph: %b@."
    (Ospf.Session.messages session - before)
    healed;
  if not healed then exit 1
