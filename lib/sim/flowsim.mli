(** Flow-level enforcement simulator.

    Walks every flow through its policy's middlebox chain using the
    controller's per-entity next-hop decisions, accumulating per-
    middlebox load in packets — the quantity Figures 4/5 and Table III
    report.  Per-flow stickiness is inherent (decisions hash the
    flow), so this computes exactly the loads the packet-level
    simulator observes, at a small fraction of the cost; an
    integration test asserts the equality on small scenarios.

    Also accounts path length (router hops weighted by packets) so
    experiments can report the latency stretch enforcement induces. *)

type result = {
  loads : float array;          (** packets processed, per middlebox id *)
  packet_hops : float;          (** Σ over packets of router hops travelled *)
  direct_packet_hops : float;   (** same traffic, shortest paths, no enforcement *)
  enforced_flows : int;         (** flows that traversed >= 1 middlebox *)
  enforced_packets : int;
  policy_violations : int;
      (** packets whose chain hit an emptied candidate set and were
          hot-potatoed to the destination unenforced (0 without faults) *)
  violating_flows : int;        (** flows contributing to [policy_violations] *)
  events : int;
      (** flow records plus steering decisions processed — the
          flow-level analogue of [Pktsim.stats.events_processed], used
          by the bench harness to report real per-experiment
          throughput *)
}

val run :
  ?alive:(int -> bool) ->
  ?shards:int ->
  ?shard_seed:int ->
  controller:Sdm.Controller.t -> workload:Workload.t -> unit -> result
(** [alive] enables local fast failover around failed middleboxes; see
    [Sdm.Strategy.next_hop_result].  A flow whose candidate set for
    some function is entirely dead is not an error: the remainder of
    its chain is skipped, it is forwarded to its destination, and its
    packets are counted in [policy_violations].

    [shards] (default 1) splits the run by flow-hash across parallel
    domains: flow ids are partitioned with the seeded ownership hash
    {!Stdx.Shard.owner} (a function of [shard_seed] (default 0) and
    the flow id alone), each shard exclusively owns its flows'
    accumulators, and the per-shard partials are merged in fixed
    shard-index order after the join.  Every accumulated float is an
    exact integer (integer link costs times bounded packet counts,
    far below 2^53), so the result is bit-identical for every
    [shards] value — [shards = 1] runs the literal sequential path
    the pinned oracles were recorded on, and oracle tests pin
    [shards = 1] = [shards = 4]. *)

val run_packed :
  ?alive:(int -> bool) ->
  ?shards:int ->
  ?shard_seed:int ->
  controller:Sdm.Controller.t ->
  workload:Workload.Packed.packed -> unit -> result
(** {!run} over a packed off-heap flow store ({!Workload.Packed}):
    flows are decoded on the fly per shard, so a multi-million-flow
    run never materialises the heap flow array.  Bit-identical to
    {!run} on the equivalent {!Workload.generate} population. *)

val loads_of_nf :
  Sdm.Controller.t -> result -> Policy.Action.nf -> float array
(** The load vector restricted to middleboxes of one type (ascending
    id) — rows of Table III. *)

val max_load_of_nf : Sdm.Controller.t -> result -> Policy.Action.nf -> float
(** Maximum entry of {!loads_of_nf} (0 if the type is undeployed) —
    the y-axis of Figures 4 and 5. *)

val stretch : result -> float
(** packet_hops / direct_packet_hops (1.0 = no stretch). *)

val trace :
  controller:Sdm.Controller.t -> Netpkt.Flow.t ->
  Policy.Rule.t option * Mbox.Middlebox.t list
(** Diagnostic: the first-matching rule for a flow and the exact
    middlebox sequence the active strategy steers it through (empty
    for unmatched or permitted flows).  The flow's source address must
    belong to some proxy's subnet, else [Invalid_argument]. *)

val differential :
  ?abs_tol:float -> ?rel_tol:float -> result -> Pktsim.stats -> Audit.Differential.verdict
(** Differential oracle against a packet-level run of the same
    controller and workload: compares the two per-middlebox load
    vectors ({!Audit.Differential.compare}).  On fault-free static
    configurations the default (exact) tolerances must pass. *)
