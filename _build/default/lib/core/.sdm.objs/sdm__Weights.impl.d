lib/core/weights.ml: Array Hashtbl Mbox Policy
