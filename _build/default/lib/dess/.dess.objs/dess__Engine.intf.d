lib/dess/engine.mli:
