lib/sim/experiment.ml: Array Flowsim List Mbox Netgraph Option Pktsim Policy Sdm Stdx Workload
