type t = { src : Addr.t; dst : Addr.t; proto : int; sport : int; dport : int }

let make ~src ~dst ~proto ~sport ~dport =
  if proto < 0 || proto > 255 then invalid_arg "Flow.make: bad protocol";
  if sport < 0 || sport > 65535 || dport < 0 || dport > 65535 then
    invalid_arg "Flow.make: bad port";
  { src; dst; proto; sport; dport }

(* Field-wise in declaration order: the same total order
   [Stdlib.compare] gave this all-int record, without the polymorphic
   dispatch. *)
let compare a b =
  let c = Int.compare a.src b.src in
  if c <> 0 then c
  else
    let c = Int.compare a.dst b.dst in
    if c <> 0 then c
    else
      let c = Int.compare a.proto b.proto in
      if c <> 0 then c
      else
        let c = Int.compare a.sport b.sport in
        if c <> 0 then c else Int.compare a.dport b.dport

let equal a b =
  a.src = b.src && a.dst = b.dst && a.proto = b.proto && a.sport = b.sport
  && a.dport = b.dport

(* The 104-bit flow identity packed into two non-negative ints —
   src·32 + sport·16 in one, dst·32 + dport·16 + proto·8 in the
   other — so flow-keyed tables can inline keys in int arrays and
   compare without touching the record.  Addresses are 32-bit
   ({!Addr.t}), so both halves sit far below the 62-bit limit. *)
let key t = (t.src lsl 16) lor t.sport
let key2 t = (t.dst lsl 24) lor (t.dport lsl 8) lor t.proto

let of_key k1 k2 =
  {
    src = k1 lsr 16;
    sport = k1 land 0xFFFF;
    dst = k2 lsr 24;
    dport = (k2 lsr 8) land 0xFFFF;
    proto = k2 land 0xFF;
  }

let hash t = Stdx.Xhash.combine5 t.src t.dst t.proto t.sport t.dport

let hash_to_unit t = Stdx.Xhash.to_unit_interval (hash t)

let reverse t = { t with src = t.dst; dst = t.src; sport = t.dport; dport = t.sport }

let to_string t =
  Printf.sprintf "%s:%d>%s:%d/%d" (Addr.to_string t.src) t.sport
    (Addr.to_string t.dst) t.dport t.proto

let pp ppf t = Format.pp_print_string ppf (to_string t)

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash t = Int64.to_int (hash t) land max_int
end)
