type t = { mutable data : float array; mutable size : int }

let create () = { data = [||]; size = 0 }

let length t = t.size

let push t x =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ndata = Array.make (if cap = 0 then 16 else cap * 2) 0.0 in
    Array.blit t.data 0 ndata 0 t.size;
    t.data <- ndata
  end;
  t.data.(t.size) <- x;
  t.size <- t.size + 1

let get t i =
  if i < 0 || i >= t.size then invalid_arg "Fvec.get: index out of bounds";
  t.data.(i)

let to_array t = Array.sub t.data 0 t.size

let clear t =
  t.data <- [||];
  t.size <- 0
