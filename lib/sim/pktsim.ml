type table_source = Oracle | Distributed_ospf | Distributed_dvr

type classifier = Trie | Dectree | Linear

(* Live control plane (Sec. III.A-III.C run in-line): the controller
   sits at an attachment router, re-optimizes at epoch boundaries and
   on detected failures, and pushes versioned configuration updates to
   every proxy and middlebox over the same lossy control channel the
   data plane uses. *)
type live_config = {
  epoch_interval : float;
  reconcile_interval : float;
  push_backoff : float;
  push_backoff_cap : float;
  push_max_retries : int;
  controller_router : int option;
  replicas : int;
  quorum : Quorum.family;
  replica_routers : int list option;
  sweep_period : float option;
      (* anti-entropy digest sweep over every device's soft state;
         [None] disables it (and keeps the run bit-identical to a
         build without the sweep machinery) *)
  warm_start : bool;
      (* thread the previous plan's simplex basis through every in-run
         re-optimization (incremental candidate patching + phase-2-only
         LP re-solve where the layout held); [false] runs the cold path
         bit-identically to builds without warm-start support *)
}

let default_live =
  {
    epoch_interval = 25.0;
    reconcile_interval = 5.0;
    push_backoff = 2.0;
    (* High enough that the default six-retry ladder (2,4,...,64) is
       never clipped: the cap only bites configs that raise the retry
       budget or the base. *)
    push_backoff_cap = 120.0;
    push_max_retries = 6;
    controller_router = None;
    replicas = 1;
    quorum = Quorum.Majority;
    replica_routers = None;
    sweep_period = None;
    warm_start = false;
  }

(* The retry ladder every control-plane chain (config push, proposal,
   commit notice) climbs: exponential from [push_backoff], clipped at
   [push_backoff_cap]. *)
let push_backoff_delay (l : live_config) ~attempt =
  Float.min (l.push_backoff *. (2.0 ** float_of_int attempt)) l.push_backoff_cap

type config = {
  label_switching : bool;
  mtu : int;
  link_delay : float;
  packet_interval : float;
  start_window : float;
  cache_timeout : float;
  seed : int;
  table_source : table_source;
  classifier : classifier;
  service_rate : float;
  label_timeout : float;
  wp_cache_hit_ratio : float;
  cache_capacity : int option;
  ecmp : bool;
  faults : Fault.Schedule.t option;
  detection_delay : float;
  failover : bool;
  ctrl_retry_timeout : float;
  ctrl_max_retries : int;
  live : live_config option;
  audit : bool;
  debug_bypass_chain : int option;
  shards : int;
}

let default_config =
  {
    label_switching = true;
    mtu = 1500;
    link_delay = 0.1;
    packet_interval = 1.0;
    start_window = 50.0;
    cache_timeout = 1e9;
    seed = 99;
    table_source = Oracle;
    classifier = Trie;
    service_rate = infinity;
    label_timeout = infinity;
    wp_cache_hit_ratio = 0.0;
    cache_capacity = None;
    ecmp = false;
    faults = None;
    detection_delay = 10.0;
    failover = true;
    ctrl_retry_timeout = 5.0;
    ctrl_max_retries = 3;
    live = None;
    audit = false;
    debug_bypass_chain = None;
    shards = 1;
  }

type stats = {
  loads : float array;
  injected_packets : int;
  delivered_packets : int;
  dropped_packets : int;
  control_packets : int;
  multi_field_lookups : int;
  cache_hits : int;
  cache_negative_hits : int;
  tunneled_packets : int;
  label_switched_packets : int;
  fragments_created : int;
  router_hops : int;
  sim_time : float;
  latency_mean : float;  (* 0.0 when nothing was delivered *)
  latency_p50 : float;
  latency_p99 : float;
  label_misses : int;    (* label-switched packets hitting an expired entry *)
  teardowns : int;       (* teardown notifications back to proxies *)
  wp_cache_served : int; (* requests answered from the web proxy's cache *)
  cache_evictions : int; (* capacity-forced LRU evictions across all caches *)
  events_scheduled : int; (* engine events created over the whole run *)
  events_processed : int; (* engine events fired over the whole run *)
  policy_violations : int; (* enforced packets that escaped their chain *)
  fault_dropped : int;   (* packets lost to injected faults *)
  control_retries : int; (* control-packet retransmissions *)
  control_lost : int;    (* control-packet transmissions lost to faults *)
  last_violation_time : float; (* time of the last policy violation, 0 if none *)
  (* Live control plane (all 0 / all-zero arrays when [live = None]). *)
  config_pushes : int;   (* config-push transmissions, retries included *)
  config_acks : int;     (* install acknowledgements the controller got *)
  config_lost : int;     (* config/ack transmissions lost to faults *)
  config_bytes : int;    (* bytes of configuration put on the wire *)
  reoptimizations : int; (* configuration versions published *)
  config_degraded : int; (* re-optimizations or pushes abandoned: partition,
                            LP failure, or mixed-version verification veto *)
  final_config_version : int;
  stale_devices : int;   (* devices below the final version at run end *)
  entity_control_retries : int array; (* per device: proxies, then mboxes *)
  entity_control_lost : int array;
  entity_config_version : int array;
  (* Replicated control plane (all 0 / empty when [replicas = 1] the
     counters still run — the single replica plays a one-acceptor
     quorum — but no quorum traffic ever hits the wire). *)
  quorum_rounds : int;     (* propose/accept/commit rounds started *)
  quorum_commits : int;    (* rounds that reached quorum and committed *)
  quorum_aborts : int;     (* rounds abandoned: no quorum, or superseded *)
  quorum_msgs : int;       (* proposal/vote/commit-notice transmissions *)
  quorum_lost : int;       (* of those, lost to the control channel *)
  leader_changes : int;    (* re-elections after a leader crash *)
  replica_versions : int array; (* per replica: highest committed version *)
  (* Silent state corruption and the anti-entropy sweep (all 0 when the
     schedule has no corruption events / [sweep_period = None]). *)
  corruptions_injected : int;  (* corruption events that found a target *)
  corruptions_manifested : int; (* of those, ones the data plane ever used *)
  corruptions_detected : int;  (* digest mismatches the sweep found *)
  corruptions_repaired : int;  (* corruptions resolved (purge/rebase/re-push) *)
  sweep_rounds : int;      (* sweep rounds started *)
  sweep_msgs : int;        (* digest query/reply transmissions *)
  sweep_lost : int;        (* of those, lost to the control channel *)
  sweep_bytes : int;       (* repair-traffic overhead on the wire *)
  repair_window_mean : float; (* mean inject-to-repair time, 0 if none *)
  repair_window_max : float;
  (* Incremental re-optimization (all 0 when [live = None]; warm/
     fallback are 0 unless [warm_start] was on). *)
  reopt_pivots : int;     (* simplex pivots across all in-run re-solves *)
  reopt_phase1_pivots : int; (* of those, phase-1 (cold-path) pivots *)
  reopt_warm_used : int;  (* re-solves the previous basis carried *)
  reopt_fallback : int;   (* warm attempts that fell back cold *)
  audit_report : Audit.Checker.report option; (* None unless [config.audit] *)
}

type counters = {
  mutable injected : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable control : int;
  mutable lookups : int;
  mutable cache_hits : int;
  mutable cache_negative_hits : int;
  mutable tunneled : int;
  mutable label_switched : int;
  mutable fragments : int;
  mutable hops : int;
  mutable label_misses : int;
  mutable teardowns : int;
  mutable wp_served : int;
  mutable violations : int;
  mutable fault_dropped : int;
  mutable retries : int;
  mutable ctrl_lost : int;
  mutable last_violation : float;
  mutable cfg_pushes : int;
  mutable cfg_acks : int;
  mutable cfg_lost : int;
  mutable cfg_bytes : int;
  mutable reopts : int;
  mutable cfg_degraded : int;
  mutable q_rounds : int;
  mutable q_commits : int;
  mutable q_aborts : int;
  mutable q_msgs : int;
  mutable q_lost : int;
  mutable elections : int;
  mutable corrupt_injected : int;
  mutable corrupt_manifested : int;
  mutable corrupt_detected : int;
  mutable corrupt_repaired : int;
  mutable sweep_rounds : int;
  mutable sweep_msgs : int;
  mutable sweep_lost : int;
  mutable sweep_bytes : int;
  mutable repair_sum : float;
  mutable repair_max : float;
  mutable reopt_pivots : int;
  mutable reopt_phase1 : int;
  mutable reopt_warm : int;
  mutable reopt_fallback : int;
}

(* Messages on the wire: ordinary data packets, or the control packet
   the chain's last middlebox sends back to the proxy (Sec. III.E).
   Data packets carry their audit identity (the injected-packet counter
   at admission) across tunnel legs and header rewrites. *)
type msg =
  | Data of Netpkt.Packet.t * float * int (* packet, injection time, aid *)
  | Control of { dst : Netpkt.Addr.t; flow : Netpkt.Flow.t }
  | Teardown of { dst : Netpkt.Addr.t; label : int }
      (* an expired label-switched path: the proxy must fall back to
         IP-over-IP and re-establish *)

(* Where a destination address lives: the attachment router plus the
   endpoint to hand the message to on arrival. *)
type endpoint = To_subnet of int | To_mbox of int

(* One injected corruption, tracked from injection to repair so the
   repair-window statistics and the audit's Repair invariant have
   ground truth to measure against. *)
type corruption_record = {
  cr_cid : int;
  cr_dev : int;  (* device owning the corrupted state, flat indexing *)
  cr_kind : Audit.Event.corrupt_kind;
  cr_site : Audit.Event.corrupt_site;
  cr_injected_at : float;
  mutable cr_manifested : bool;
  mutable cr_repaired : bool;
}

(* Armed only when the schedule carries corruption events.  The RNG is
   a derived child of the loss seed — a fresh stream, so arming the
   machinery never perturbs the loss draws of a corruption-free run.
   The site tables index live (unrepaired) corruptions by where a
   data-path lookup would trip over them; [graveyard] keeps the entries
   each install purged, which is what [Stale_resurrect] re-installs. *)
type corrupt_state = {
  crng : Stdx.Rng.t;
  mutable next_cid : int;
  records : (int, corruption_record) Hashtbl.t;
  label_sites : (int * Netpkt.Addr.t * int, int) Hashtbl.t;
  cache_sites : (int * Netpkt.Flow.t, int) Hashtbl.t;
  config_sites : (int, int) Hashtbl.t;
  graveyard : (Mbox.Label_table.key * Mbox.Label_table.entry) list array;
  want_graveyard : bool;
}

(* Live fault machinery for a run with a schedule: the ground-truth /
   believed-state failure detector, the RNG behind the loss draws, and
   (only when links fail mid-run) the OSPF session whose reconverged
   tables replace the world's on every topology change. *)
type fault_state = {
  detector : Fault.Detector.t;
  schedule : Fault.Schedule.t;
  loss_rng : Stdx.Rng.t;
  session : Ospf.Session.t option;
  corrupt : corrupt_state option;
}

(* Live control-plane state.  Devices (proxies first, then middleboxes)
   are indexed flat; [configs.(v)] is the controller published as
   version [v], with version 0 the configuration the run started on.
   Devices stage at most the two adjacent versions {installed-1,
   installed}: that is the invariant Verify.check_mixed certifies. *)
type live_state = {
  lcfg : live_config;
  ctrl_router : int;
  mutable configs : Sdm.Controller.t array;
  mutable latest : int;
  device_version : int array; (* installed at the device *)
  device_acked : int array;   (* highest version the controller saw acked *)
  meas : Sdm.Measurement.t;   (* per-(src, dst, rule) volumes observed so far *)
  mutable horizon : float;    (* time of the last scheduled injection *)
  mutable reconcile_rounds : int;
  (* Controller replication.  Replica [i] sits at [replica_router.(i)]
     (replica 0 at [ctrl_router]); the leader is the lowest-id live
     replica and the only one that proposes, commits, and pushes.  A
     candidate configuration parks in [pending] while its quorum round
     is in flight and reaches [configs] only through a commit — the
     single gate into the staged window. *)
  mutable leader : int;
  replica_router : int array;
  replica_up : bool array;
  acceptors : Quorum.Acceptor.t array; (* durable across crashes *)
  mutable round : Quorum.Round.t option;
  mutable pending : Sdm.Controller.t option;
}

type world = {
  cfg : config;
  controller : Sdm.Controller.t;
  dep : Sdm.Deployment.t;
  engine : Dess.Engine.t;
  mutable tables : Netgraph.Routing.table array;
  mutable ecmp_tables : Netgraph.Routing.ecmp_table array option;
  fault : fault_state option;
  live : live_state option;
  counters : counters;
  (* Per-device control-channel accounting (satellite of the live
     control plane, but maintained for static runs too): label
     establishment/teardown retransmissions are attributed to the
     sending middlebox, config pushes to the target device. *)
  entity_ctrl_retries : int array;
  entity_ctrl_lost : int array;
  latencies : Stdx.Fvec.t; (* delivered-packet end-to-end times *)
  busy_until : float array; (* per-middlebox FIFO server horizon *)
  loads : float array;
  (* Per-proxy and per-middlebox soft state. *)
  proxy_caches : Policy.Flow_cache.t array;
  (* [config.classifier]-selected matcher closures: trie, decision
     tree or linear scan, all with identical first-match semantics *)
  proxy_match : (Netpkt.Flow.t -> Policy.Rule.t option) array;
  mutable_label : int array; (* next label per proxy *)
  (* reverse index: label -> flow, so a teardown (which carries only
     src|label) can find the proxy's flow-cache entry; flat-keyed on
     (label, 0) so installs on the first-packet path stay cheap *)
  proxy_label_index : Netpkt.Flow.t Stdx.Flat_table.t array;
  mbox_caches : Policy.Flow_cache.t array;
  mbox_match : (Netpkt.Flow.t -> Policy.Rule.t option) array;
  mbox_labels : Mbox.Label_table.t array;
  (* Address resolution (middleboxes by exact address; stub subnets
     via the deployment's prefix index). *)
  mbox_index : (Netpkt.Addr.t, int) Hashtbl.t;
  rule_by_id : (int, Policy.Rule.t) Hashtbl.t;
  (* Online invariant auditor (None unless [config.audit]).  Emission
     is a pure side-channel: no randomness, no engine work, no float
     arithmetic the data path sees — an audited run is bit-identical
     to an unaudited one in every other statistic. *)
  audit : Audit.Checker.t option;
}

(* ---- Fault plumbing --------------------------------------------- *)

(* A packet of an enforced flow escaped its middlebox chain — the
   dependability metric ABL-CHAOS sweeps. *)
let policy_violation w =
  w.counters.violations <- w.counters.violations + 1;
  w.counters.last_violation <- Dess.Engine.now w.engine

let mbox_is_down w id =
  match w.fault with
  | Some f -> not (Fault.Detector.actually_up f.detector id)
  | None -> false

(* ---- Audit emission ---------------------------------------------- *)

(* The event is built inside a thunk so an unaudited run pays one
   [match] per site and allocates nothing. *)
let audit_emit w f =
  match w.audit with None -> () | Some a -> Audit.Checker.record a (f ())

let msg_aid = function
  | Data (_, _, aid) -> aid
  | Control _ | Teardown _ -> -1 (* control traffic: counted, not traced *)

(* ---- Silent-corruption bookkeeping ------------------------------- *)

let corrupt_of w =
  match w.fault with
  | Some { corrupt = Some cs; _ } -> Some cs
  | _ -> None

(* The Repair invariant's bound: a corruption must be repaired within
   two sweep periods of injection (one period to be visited, one for
   the lossy query/reply/re-push ladder).  No sweep, no bound. *)
let repair_deadline w ~now =
  match w.cfg.live with
  | Some { sweep_period = Some p; _ } -> now +. (2.0 *. p)
  | _ -> infinity

(* Register one injected corruption and announce the ground truth to
   the auditor, which arms its Repair invariant on the first one. *)
let register_corruption w cs ~dev ~kind ~site =
  let cid = cs.next_cid in
  cs.next_cid <- cid + 1;
  let now = Dess.Engine.now w.engine in
  Hashtbl.replace cs.records cid
    { cr_cid = cid; cr_dev = dev; cr_kind = kind; cr_site = site;
      cr_injected_at = now; cr_manifested = false; cr_repaired = false };
  (match site with
  | Audit.Event.Label_site { mbox; src; label } ->
    Hashtbl.replace cs.label_sites (mbox, src, label) cid
  | Audit.Event.Cache_site { proxy; flow } ->
    Hashtbl.replace cs.cache_sites (proxy, flow) cid
  | Audit.Event.Config_site { dev } -> Hashtbl.replace cs.config_sites dev cid);
  w.counters.corrupt_injected <- w.counters.corrupt_injected + 1;
  audit_emit w (fun () ->
      Audit.Event.Corrupt_inject
        { time = now; cid; kind; site;
          deadline = repair_deadline w ~now })

(* The corrupted state just influenced the data plane.  The distinct-
   corruption counter advances once; packet-scoped manifestations are
   announced every time so the auditor can excuse each hit packet's
   chain ([aid] = -1 for decision-scoped ones, announced once). *)
let manifest_corruption w cs ~cid ~aid =
  match Hashtbl.find_opt cs.records cid with
  | None -> ()
  | Some r ->
    let first = not r.cr_manifested in
    if first then begin
      r.cr_manifested <- true;
      w.counters.corrupt_manifested <- w.counters.corrupt_manifested + 1
    end;
    if aid >= 0 || first then
      audit_emit w (fun () ->
          Audit.Event.Corrupt_manifest
            { time = Dess.Engine.now w.engine; cid; aid })

(* Mark one corruption repaired: record the inject-to-repair window,
   retire its site (later lookups there see clean state) and announce
   the repair.  Idempotent — a corruption repairs at most once. *)
let resolve_corruption w cs ~dev ~action r =
  if not r.cr_repaired then begin
    r.cr_repaired <- true;
    let now = Dess.Engine.now w.engine in
    let window = now -. r.cr_injected_at in
    w.counters.corrupt_repaired <- w.counters.corrupt_repaired + 1;
    w.counters.repair_sum <- w.counters.repair_sum +. window;
    if window > w.counters.repair_max then w.counters.repair_max <- window;
    (match r.cr_site with
    | Audit.Event.Label_site { mbox; src; label } ->
      Hashtbl.remove cs.label_sites (mbox, src, label)
    | Audit.Event.Cache_site { proxy; flow } ->
      Hashtbl.remove cs.cache_sites (proxy, flow)
    | Audit.Event.Config_site { dev } -> Hashtbl.remove cs.config_sites dev);
    audit_emit w (fun () ->
        Audit.Event.Corrupt_repair { time = now; cid = r.cr_cid; dev; action })
  end

let resolve_cid w cs ~cid ~dev ~action =
  match Hashtbl.find_opt cs.records cid with
  | None -> ()
  | Some r -> resolve_corruption w cs ~dev ~action r

(* The liveness view a steering decision saw: the signature of the
   believed-failed set when failover consults the detector, 0 when no
   liveness filtering applies (the stickiness invariant holds per
   view). *)
let steer_view w =
  match w.fault with
  | Some f when w.cfg.failover ->
    Fault.Detector.belief_signature f.detector ~now:(Dess.Engine.now w.engine)
  | _ -> 0L

(* ---- Live-control-plane device indexing -------------------------- *)

let n_devices w =
  Array.length w.dep.Sdm.Deployment.proxies
  + Array.length w.dep.Sdm.Deployment.middleboxes

let dev_of_entity w = function
  | Mbox.Entity.Proxy i -> i
  | Mbox.Entity.Middlebox i -> Array.length w.dep.Sdm.Deployment.proxies + i

let dev_of_mbox w id = Array.length w.dep.Sdm.Deployment.proxies + id

let dev_entity w dev =
  let n_proxies = Array.length w.dep.Sdm.Deployment.proxies in
  if dev < n_proxies then Mbox.Entity.Proxy dev
  else Mbox.Entity.Middlebox (dev - n_proxies)

let installed_version w entity =
  match w.live with
  | None -> 0
  | Some ls -> ls.device_version.(dev_of_entity w entity)

(* A steering decision at a device whose config install was silently
   lost runs under regressed weights: that is the lost install
   manifesting.  Not a policy violation — regression by exactly one
   version stays inside the certified staged window — but the Repair
   invariant starts its clock. *)
let note_config_use w entity =
  match corrupt_of w with
  | None -> ()
  | Some cs -> (
    match Hashtbl.find_opt cs.config_sites (dev_of_entity w entity) with
    | Some cid -> manifest_corruption w cs ~cid ~aid:(-1)
    | None -> ())

(* A legitimate label insert overwriting a corrupted entry replaces it
   with freshly certified state: the corruption is gone before the
   sweep ever saw it.  Count that as a (free) repair so the registry
   stays honest and later hits at the site are not misread as
   manifestations. *)
let note_label_overwrite w ~mbox ~src ~label =
  match corrupt_of w with
  | None -> ()
  | Some cs -> (
    match Hashtbl.find_opt cs.label_sites (mbox, src, label) with
    | Some cid ->
      resolve_cid w cs ~cid ~dev:(dev_of_mbox w mbox)
        ~action:Audit.Event.Rebased
    | None -> ())

(* A label-switched packet matched a corrupted (mis-steering or
   resurrected) entry: it is now travelling somewhere the current
   configuration never certified.  That is both a manifestation and a
   policy violation. *)
let note_label_hit w ~mbox ~src ~label ~aid =
  match corrupt_of w with
  | None -> ()
  | Some cs -> (
    match Hashtbl.find_opt cs.label_sites (mbox, src, label) with
    | Some cid ->
      manifest_corruption w cs ~cid ~aid;
      policy_violation w
    | None -> ())

(* A label miss at the site of a silently dropped entry: the packet of
   an established path is lost unenforced, which a mere expiry never
   does (expiry tears the path down end-to-end). *)
let note_label_miss w ~mbox ~src ~label ~aid =
  match corrupt_of w with
  | None -> ()
  | Some cs -> (
    match Hashtbl.find_opt cs.label_sites (mbox, src, label) with
    | Some cid -> (
      match Hashtbl.find_opt cs.records cid with
      | Some r when r.cr_kind = Audit.Event.Lost_entry ->
        manifest_corruption w cs ~cid ~aid;
        policy_violation w
      | Some _ | None -> ())
    | None -> ())

(* A proxy admission decided from a poisoned cache entry: the packet
   bypasses (or short-circuits) the chain its policy demands. *)
let note_cache_bypass w ~proxy ~flow ~aid =
  match corrupt_of w with
  | None -> ()
  | Some cs -> (
    match Hashtbl.find_opt cs.cache_sites (proxy, flow) with
    | Some cid ->
      manifest_corruption w cs ~cid ~aid;
      policy_violation w
    | None -> ())

(* The configuration an entity decides with: its installed version —
   or, when the decision belongs to a flow admitted under an older
   version, the admitting version clamped into the staged adjacent
   window {installed-1, installed}.  Clamping keeps in-flight flows
   sticky to the weights that admitted them for exactly one update
   boundary; beyond that the flow is re-steered under newer weights
   (its stale label entries have been purged by then). *)
let decision_version w ?admitted entity =
  match w.live with
  | None -> 0
  | Some ls -> (
    let inst = ls.device_version.(dev_of_entity w entity) in
    match admitted with
    | Some a when a < inst -> Stdlib.max a (inst - 1)
    | _ -> inst)

let decision_controller w ?admitted entity =
  match w.live with
  | None -> w.controller
  | Some ls -> ls.configs.(decision_version w ?admitted entity)

(* Steering decision under faults: with failover on, entities consult
   the failure detector's (delayed) view; with it off they keep using
   the static configuration.  The no-fault path calls the raising
   variant directly — candidate sets are non-empty by construction, so
   it cannot raise, and it skips all liveness filtering. *)
let controller_next_hop w ?admitted entity ~rule ~nf flow =
  note_config_use w entity;
  let c = decision_controller w ?admitted entity in
  match w.fault with
  | None -> Ok (Sdm.Controller.next_hop c entity ~rule ~nf flow)
  | Some f ->
    if w.cfg.failover then
      let now = Dess.Engine.now w.engine in
      Sdm.Controller.next_hop_result
        ~alive:(fun id -> Fault.Detector.believed_alive f.detector ~now id)
        c entity ~rule ~nf flow
    else Sdm.Controller.next_hop_result c entity ~rule ~nf flow

(* Traffic measurement feeding re-optimization: each enforced packet a
   proxy admits adds one unit at its (source, destination, rule) cell,
   the granularity the Eq. (2) LP consumes. *)
let note_traffic w (fs : Workload.flow_spec) ~rule_id =
  match w.live with
  | None -> ()
  | Some ls ->
    Sdm.Measurement.add ls.meas ~src:fs.Workload.src_proxy
      ~dst:fs.Workload.dst_proxy ~rule:rule_id 1.0

(* One Bernoulli draw per data packet per link crossed; control-packet
   loss is modelled at transmission granularity in [send_control]. *)
let link_lost w msg =
  match (w.fault, msg) with
  | Some f, Data _ when f.schedule.Fault.Schedule.link_loss > 0.0 ->
    Stdx.Rng.float f.loss_rng 1.0 < f.schedule.Fault.Schedule.link_loss
  | _ -> false

(* One Bernoulli draw per control-plane transmission (label control and
   config pushes alike share the channel and the loss process). *)
let control_loss_draw w =
  match w.fault with
  | Some f when f.schedule.Fault.Schedule.control_loss > 0.0 ->
    Stdx.Rng.float f.loss_rng 1.0 < f.schedule.Fault.Schedule.control_loss
  | _ -> false

let drop_to_fault w =
  w.counters.dropped <- w.counters.dropped + 1;
  w.counters.fault_dropped <- w.counters.fault_dropped + 1

let resolve w addr =
  match Hashtbl.find_opt w.mbox_index addr with
  | Some id ->
    Some (w.dep.Sdm.Deployment.middleboxes.(id).Mbox.Middlebox.router, To_mbox id)
  | None -> (
    match Sdm.Deployment.proxy_of_addr w.dep addr with
    | Some p -> Some (p.Mbox.Proxy.router, To_subnet p.Mbox.Proxy.id)
    | None -> None)

let msg_dst = function
  | Data (pkt, _, _) -> pkt.Netpkt.Packet.header.Netpkt.Header.dst
  | Control { dst; _ } -> dst
  | Teardown { dst; _ } -> dst

(* Count the fragments a data packet would shatter into when it first
   hits a link; the logical packet keeps travelling whole (tunnel
   endpoints would reassemble anyway), only the statistic records the
   overhead label switching exists to avoid. *)
let note_fragments w = function
  | Data (pkt, _, aid) ->
    let extra =
      Netpkt.Fragment.count ~mtu:w.cfg.mtu (Netpkt.Packet.size pkt) - 1
    in
    w.counters.fragments <- w.counters.fragments + extra;
    if extra > 0 then
      audit_emit w (fun () ->
          Audit.Event.Fragmented
            { aid; time = Dess.Engine.now w.engine; extra })
  | Control _ | Teardown _ -> ()

(* Figure 3: a web proxy holding the requested page "honors" the
   request — the packet stops here and a response goes back, skipping
   the rest of the chain and the origin server.  The decision must be
   per-flow sticky across tunnelled and label-switched packets, so it
   hashes the fields both forms share: source address and label when
   present, the full 5-tuple otherwise. *)
let wp_serves_from_cache w (mb : Mbox.Middlebox.t) ~src ~label ~flow_hash =
  w.cfg.wp_cache_hit_ratio > 0.0
  && Policy.Action.equal_nf mb.Mbox.Middlebox.nf Policy.Action.WP
  &&
  let h =
    match label with
    | Some l -> Stdx.Xhash.combine3 src l 0x77AC
    | None -> Stdx.Xhash.fold_int flow_hash 0x77AC
  in
  Stdx.Xhash.to_unit_interval h < w.cfg.wp_cache_hit_ratio

(* The cached response: modelled as immediate delivery back to the
   client (the reverse path carries no policy work in our classes). *)
let serve_from_cache w ~born ~aid ~mbox =
  w.counters.wp_served <- w.counters.wp_served + 1;
  w.counters.delivered <- w.counters.delivered + 1;
  Stdx.Fvec.push w.latencies (Dess.Engine.now w.engine -. born);
  audit_emit w (fun () ->
      Audit.Event.Wp_served { aid; time = Dess.Engine.now w.engine; mbox })

(* Hop fast-forwarding: the routers between two policy decision points
   are policy-oblivious and their tables (and ECMP hash choices) are
   fixed for the whole run, so transit is fully deterministic.  Instead
   of paying one event-queue cycle per router hop, walk the tables
   inline here and schedule a single arrival event at the segment's
   endpoint.  The arrival time accumulates [link_delay] by repeated
   addition — the same float operations the per-hop event cascade
   performed — so every timestamp, and hence every statistic, is
   bit-identical to per-hop execution. *)
let rec send w ~from_router msg =
  note_fragments w msg;
  let audit_drop reason =
    audit_emit w (fun () ->
        Audit.Event.Dropped
          { aid = msg_aid msg; time = Dess.Engine.now w.engine; reason })
  in
  match resolve w (msg_dst msg) with
  | None ->
    w.counters.dropped <- w.counters.dropped + 1;
    audit_drop Audit.Event.Unroutable
  | Some (target_router, endpoint) ->
    let rec walk router time =
      if router = target_router then begin
        if link_lost w msg then begin
          drop_to_fault w;
          audit_drop Audit.Event.Link_loss
        end
        else
          ignore
            (Dess.Engine.schedule_at w.engine ~time:(time +. w.cfg.link_delay)
               (fun _ -> deliver w endpoint msg))
      end
      else
        match next_hop_for w ~router ~target_router msg with
        | None ->
          w.counters.dropped <- w.counters.dropped + 1;
          audit_drop Audit.Event.Unroutable
        | Some hop ->
          if link_lost w msg then begin
            drop_to_fault w;
            audit_drop Audit.Event.Link_loss
          end
          else begin
            w.counters.hops <- w.counters.hops + 1;
            walk hop (time +. w.cfg.link_delay)
          end
    in
    walk from_router (Dess.Engine.now w.engine)

(* With ECMP enabled, routers spread flows over every shortest-path
   next hop by hashing stable header fields (plus the router id, so
   consecutive routers choose independently). *)
and next_hop_for w ~router ~target_router msg =
  match w.ecmp_tables with
  | None -> Netgraph.Routing.next_hop w.tables.(router) target_router
  | Some ecmp -> (
    match ecmp.(router).(target_router) with
    | [||] -> None
    | [| hop |] -> Some hop
    | hops ->
      let h =
        match msg with
        | Data (pkt, _, _) ->
          let hd = pkt.Netpkt.Packet.header in
          Stdx.Xhash.combine5 router hd.Netpkt.Header.src
            hd.Netpkt.Header.dst hd.Netpkt.Header.sport
            hd.Netpkt.Header.dport
        | Control { dst; _ } | Teardown { dst; _ } ->
          Stdx.Xhash.combine2 router dst
      in
      Some hops.(Stdx.Xhash.to_range h (Array.length hops)))

(* Control-plane reliability (Sec. III.E under faults): label
   establishment and teardown notifications are retransmitted on a
   timer until acknowledged or out of retries.  The retransmission is
   modelled as firing only when the transmission was actually lost —
   receivers are idempotent, so suppressing the redundant duplicates a
   real timer would generate is observationally equivalent. *)
and send_control w ~from_router ~sender msg =
  control_attempt w ~from_router ~sender ~retries_left:w.cfg.ctrl_max_retries
    msg

and control_attempt w ~from_router ~sender ~retries_left msg =
  let lost = control_loss_draw w in
  if not lost then send w ~from_router msg
  else begin
    w.counters.ctrl_lost <- w.counters.ctrl_lost + 1;
    w.entity_ctrl_lost.(sender) <- w.entity_ctrl_lost.(sender) + 1;
    if retries_left > 0 then begin
      w.counters.retries <- w.counters.retries + 1;
      w.entity_ctrl_retries.(sender) <- w.entity_ctrl_retries.(sender) + 1;
      ignore
        (Dess.Engine.schedule w.engine ~delay:w.cfg.ctrl_retry_timeout (fun _ ->
             control_attempt w ~from_router ~sender
               ~retries_left:(retries_left - 1) msg))
    end
  end

and deliver w endpoint msg =
  match (endpoint, msg) with
  | To_subnet proxy_id, Data (pkt, born, aid) ->
    (* Arrived in its stub network.  Encapsulated packets must not
       reach subnets; plain ones are final deliveries. *)
    if Netpkt.Packet.is_encapsulated pkt then begin
      w.counters.dropped <- w.counters.dropped + 1;
      audit_emit w (fun () ->
          Audit.Event.Dropped
            { aid;
              time = Dess.Engine.now w.engine;
              reason = Audit.Event.Encap_at_subnet })
    end
    else begin
      ignore proxy_id;
      w.counters.delivered <- w.counters.delivered + 1;
      Stdx.Fvec.push w.latencies (Dess.Engine.now w.engine -. born);
      audit_emit w (fun () ->
          Audit.Event.Delivered
            { aid;
              time = Dess.Engine.now w.engine;
              bytes = Netpkt.Packet.size pkt })
    end
  | To_subnet proxy_id, Control { flow; _ } ->
    w.counters.control <- w.counters.control + 1;
    ignore (Policy.Flow_cache.mark_ls_ready w.proxy_caches.(proxy_id) flow);
    audit_emit w (fun () ->
        Audit.Event.Ls_confirm
          { proxy = proxy_id; time = Dess.Engine.now w.engine; flow })
  | To_subnet proxy_id, Teardown { label; _ } -> (
    (* A downstream label entry expired: drop back to IP-over-IP until
       a fresh first packet re-establishes the path. *)
    w.counters.teardowns <- w.counters.teardowns + 1;
    audit_emit w (fun () ->
        Audit.Event.Ls_teardown
          { proxy = proxy_id; time = Dess.Engine.now w.engine; label });
    match Stdx.Flat_table.find w.proxy_label_index.(proxy_id) label 0 with
    | None -> ()
    | Some flow -> (
      let now = Dess.Engine.now w.engine in
      match Policy.Flow_cache.lookup w.proxy_caches.(proxy_id) ~now flow with
      | Some entry -> entry.Policy.Flow_cache.ls_ready <- false
      | None -> ()))
  | To_mbox id, Data (pkt, born, aid) ->
    (* FIFO service: a busy middlebox queues the packet; the wait is
       end-to-end latency, which is how overload becomes visible. *)
    if w.cfg.service_rate = infinity then mbox_receive w id pkt ~born ~aid
    else begin
      let now = Dess.Engine.now w.engine in
      let start = Stdlib.max now w.busy_until.(id) in
      let depart = start +. (1.0 /. w.cfg.service_rate) in
      w.busy_until.(id) <- depart;
      ignore
        (Dess.Engine.schedule_at w.engine ~time:depart (fun _ ->
             mbox_receive w id pkt ~born ~aid))
    end
  | To_mbox _, (Control _ | Teardown _) ->
    w.counters.dropped <- w.counters.dropped + 1;
    audit_emit w (fun () ->
        Audit.Event.Dropped
          { aid = -1;
            time = Dess.Engine.now w.engine;
            reason = Audit.Event.Unroutable })

(* ---- Middlebox data path ---------------------------------------- *)

and mbox_actions w id flow =
  (* Action list for a flow at a middlebox: flow cache first, then the
     local policy table (Sec. III.D applies to middleboxes too). *)
  let now = Dess.Engine.now w.engine in
  let cache = w.mbox_caches.(id) in
  match Policy.Flow_cache.lookup cache ~now flow with
  | Some { actions = Some a; rule_id; _ } ->
    w.counters.cache_hits <- w.counters.cache_hits + 1;
    Some (a, rule_id)
  | Some { actions = None; _ } ->
    w.counters.cache_negative_hits <- w.counters.cache_negative_hits + 1;
    None
  | None -> (
    w.counters.lookups <- w.counters.lookups + 1;
    match w.mbox_match.(id) flow with
    | None ->
      ignore (Policy.Flow_cache.insert_negative cache ~now flow);
      None
    | Some rule ->
      ignore
        (Policy.Flow_cache.insert cache ~now flow ~rule_id:rule.Policy.Rule.id
           ~actions:rule.Policy.Rule.actions ());
      Some (rule.Policy.Rule.actions, rule.Policy.Rule.id))

and mbox_receive w id pkt ~born ~aid =
  if mbox_is_down w id then begin
    (* Steered into a crashed middlebox (the detection window, or
       failover disabled): the packet is lost unenforced. *)
    drop_to_fault w;
    audit_emit w (fun () ->
        Audit.Event.Dropped
          { aid;
            time = Dess.Engine.now w.engine;
            reason = Audit.Event.Dead_mbox });
    policy_violation w
  end
  else mbox_process w id pkt ~born ~aid

and mbox_process w id pkt ~born ~aid =
  let mb = w.dep.Sdm.Deployment.middleboxes.(id) in
  match Netpkt.Packet.decapsulate pkt with
  | Some inner -> (
    (* Tunnelled leg: strip the outer header, apply the function. *)
    w.counters.tunneled <- w.counters.tunneled + 1;
    w.loads.(id) <- w.loads.(id) +. 1.0;
    audit_emit w (fun () ->
        Audit.Event.Enforced
          { aid;
            time = Dess.Engine.now w.engine;
            mbox = id;
            nf = mb.Mbox.Middlebox.nf });
    let flow = Netpkt.Packet.inner_flow pkt in
    let proxy_addr = pkt.Netpkt.Packet.header.Netpkt.Header.src in
    match mbox_actions w id flow with
    | None ->
      (* A tunnelled packet the middlebox cannot classify: forward the
         inner packet onward unprocessed. *)
      send w ~from_router:mb.Mbox.Middlebox.router (Data (inner, born, aid))
    | Some (actions, rule_id) -> (
      let rule = Hashtbl.find w.rule_by_id rule_id in
      let label = inner.Netpkt.Packet.header.Netpkt.Header.label in
      if
        wp_serves_from_cache w mb ~src:flow.Netpkt.Flow.src ~label
          ~flow_hash:(Netpkt.Flow.hash flow)
      then serve_from_cache w ~born ~aid ~mbox:id
      else
      match Policy.Action.next_after actions mb.Mbox.Middlebox.nf with
      | Some nf' -> (
        match
          controller_next_hop w (Mbox.Entity.Middlebox id) ~rule ~nf:nf' flow
        with
        | Error `No_live_candidate ->
          (* Every candidate for the rest of the chain is believed
             dead: degrade gracefully by dropping just this packet. *)
          w.counters.dropped <- w.counters.dropped + 1;
          audit_emit w (fun () ->
              Audit.Event.Dropped
                { aid;
                  time = Dess.Engine.now w.engine;
                  reason = Audit.Event.No_candidate });
          policy_violation w
        | Ok y ->
          audit_emit w (fun () ->
              Audit.Event.Steered
                { aid;
                  time = Dess.Engine.now w.engine;
                  entity = Mbox.Entity.Middlebox id;
                  rule_id;
                  nf = nf';
                  version = decision_version w (Mbox.Entity.Middlebox id);
                  view = steer_view w;
                  mbox = y.Mbox.Middlebox.id });
          (match (label, w.cfg.label_switching) with
          | Some l, true ->
            note_label_overwrite w ~mbox:id ~src:flow.Netpkt.Flow.src ~label:l;
            Mbox.Label_table.insert w.mbox_labels.(id)
              ~now:(Dess.Engine.now w.engine)
              ~version:(installed_version w (Mbox.Entity.Middlebox id))
              { Mbox.Label_table.src = flow.Netpkt.Flow.src; label = l }
              ~actions ~next:(Some y.Mbox.Middlebox.addr) ~final_dst:None;
            audit_emit w (fun () ->
                Audit.Event.Label_insert
                  { mbox = id;
                    time = Dess.Engine.now w.engine;
                    src = flow.Netpkt.Flow.src;
                    label = l;
                    version = installed_version w (Mbox.Entity.Middlebox id) })
          | _ -> ());
          let outer =
            Netpkt.Packet.encapsulate ~src:proxy_addr ~dst:y.Mbox.Middlebox.addr
              inner
          in
          send w ~from_router:mb.Mbox.Middlebox.router (Data (outer, born, aid)))
      | None ->
        (* Last function of the chain: restore normal routing and
           confirm the label-switched path to the proxy. *)
        (match (label, w.cfg.label_switching) with
        | Some l, true ->
          note_label_overwrite w ~mbox:id ~src:flow.Netpkt.Flow.src ~label:l;
          Mbox.Label_table.insert w.mbox_labels.(id)
            ~now:(Dess.Engine.now w.engine)
            ~version:(installed_version w (Mbox.Entity.Middlebox id))
            { Mbox.Label_table.src = flow.Netpkt.Flow.src; label = l }
            ~actions ~next:None ~final_dst:(Some flow.Netpkt.Flow.dst);
          audit_emit w (fun () ->
              Audit.Event.Label_insert
                { mbox = id;
                  time = Dess.Engine.now w.engine;
                  src = flow.Netpkt.Flow.src;
                  label = l;
                  version = installed_version w (Mbox.Entity.Middlebox id) });
          send_control w ~from_router:mb.Mbox.Middlebox.router
            ~sender:(dev_of_mbox w id)
            (Control { dst = proxy_addr; flow })
        | _ -> ());
        send w ~from_router:mb.Mbox.Middlebox.router (Data (inner, born, aid))))
  | None -> (
    (* No outer header: a label-switched packet addressed to us. *)
    match pkt.Netpkt.Packet.header.Netpkt.Header.label with
    | None ->
      w.counters.dropped <- w.counters.dropped + 1;
      audit_emit w (fun () ->
          Audit.Event.Dropped
            { aid;
              time = Dess.Engine.now w.engine;
              reason = Audit.Event.No_label })
    | Some l -> (
      (* The flat [find] entry point: no key record on the per-packet
         label-switched path. *)
      match
        Mbox.Label_table.find w.mbox_labels.(id)
          ~now:(Dess.Engine.now w.engine)
          ~src:pkt.Netpkt.Packet.header.Netpkt.Header.src ~label:l
      with
      | None ->
        (* Expired (or never-installed) path: the packet cannot be
           forwarded — its original destination is unknown here — but
           the proxy is told to re-establish. *)
        w.counters.dropped <- w.counters.dropped + 1;
        w.counters.label_misses <- w.counters.label_misses + 1;
        audit_emit w (fun () ->
            Audit.Event.Dropped
              { aid;
                time = Dess.Engine.now w.engine;
                reason = Audit.Event.Label_miss });
        note_label_miss w ~mbox:id
          ~src:pkt.Netpkt.Packet.header.Netpkt.Header.src ~label:l ~aid;
        (match
           Sdm.Deployment.proxy_of_addr w.dep
             pkt.Netpkt.Packet.header.Netpkt.Header.src
         with
        | Some p ->
          send_control w ~from_router:mb.Mbox.Middlebox.router
            ~sender:(dev_of_mbox w id)
            (Teardown { dst = p.Mbox.Proxy.addr; label = l })
        | None -> () (* orphaned source: nothing to notify *))
      | Some entry ->
        w.counters.label_switched <- w.counters.label_switched + 1;
        w.loads.(id) <- w.loads.(id) +. 1.0;
        audit_emit w (fun () ->
            Audit.Event.Label_hit
              { mbox = id;
                time = Dess.Engine.now w.engine;
                src = pkt.Netpkt.Packet.header.Netpkt.Header.src;
                label = l;
                version = entry.Mbox.Label_table.version });
        audit_emit w (fun () ->
            Audit.Event.Enforced
              { aid;
                time = Dess.Engine.now w.engine;
                mbox = id;
                nf = mb.Mbox.Middlebox.nf });
        note_label_hit w ~mbox:id
          ~src:pkt.Netpkt.Packet.header.Netpkt.Header.src ~label:l ~aid;
        if
          wp_serves_from_cache w mb
            ~src:pkt.Netpkt.Packet.header.Netpkt.Header.src ~label:(Some l)
            ~flow_hash:0L
        then serve_from_cache w ~born ~aid ~mbox:id
        else
        let header = pkt.Netpkt.Packet.header in
        let forward_to, strip =
          match (entry.Mbox.Label_table.next, entry.Mbox.Label_table.final_dst) with
          | Some next, None -> (next, false)
          | None, Some dst -> (dst, true)
          | _ -> assert false (* Label_table.insert forbids *)
        in
        let header = Netpkt.Header.with_dst header forward_to in
        let header = if strip then Netpkt.Header.clear_label header else header in
        send w ~from_router:mb.Mbox.Middlebox.router
          (Data ({ pkt with Netpkt.Packet.header }, born, aid))))

(* ---- Proxy data path -------------------------------------------- *)

(* The proxy's decision for one outbound packet of [fs].  [aid] is the
   packet's audit identity — the injected-packet counter at admission,
   carried on the wire for the auditor's benefit only. *)
let proxy_emit w (fs : Workload.flow_spec) ~aid =
  let proxy_id = fs.Workload.src_proxy in
  let proxy = w.dep.Sdm.Deployment.proxies.(proxy_id) in
  let now = Dess.Engine.now w.engine in
  let cache = w.proxy_caches.(proxy_id) in
  let flow = fs.Workload.flow in
  let header =
    Netpkt.Header.of_flow flow
  in
  let payload_bytes = max 0 (fs.Workload.packet_bytes - Netpkt.Header.size) in
  let plain = Netpkt.Packet.plain header ~payload_bytes in
  let entity = Mbox.Entity.Proxy proxy_id in
  let audit_admit ~admission ~version ~label =
    audit_emit w (fun () ->
        Audit.Event.Admitted
          { aid;
            time = now;
            flow;
            proxy = proxy_id;
            admission;
            version;
            bytes = Netpkt.Packet.size plain;
            label })
  in
  let tunnel_first ~rule ~label ~admitted =
    match w.cfg.debug_bypass_chain with
    | Some n when n > 0 && aid mod n = 0 ->
      (* Test-only corruption hook: every n-th packet skips its chain
         entirely and travels straight to the destination — exactly
         the escape the audit's chain invariant must catch. *)
      send w ~from_router:proxy.Mbox.Proxy.router (Data (plain, now, aid))
    | _ -> (
      let nf = List.hd rule.Policy.Rule.actions in
      match controller_next_hop w ~admitted entity ~rule ~nf flow with
      | Error `No_live_candidate ->
        (* Nowhere alive to start the chain: degrade gracefully by
           dropping the packet instead of aborting the run. *)
        w.counters.dropped <- w.counters.dropped + 1;
        audit_emit w (fun () ->
            Audit.Event.Dropped
              { aid; time = now; reason = Audit.Event.No_candidate });
        policy_violation w
      | Ok mb ->
        audit_emit w (fun () ->
            Audit.Event.Steered
              { aid;
                time = now;
                entity;
                rule_id = rule.Policy.Rule.id;
                nf;
                version = decision_version w ~admitted entity;
                view = steer_view w;
                mbox = mb.Mbox.Middlebox.id });
        let inner =
          match label with
          | Some l ->
            { plain with Netpkt.Packet.header = Netpkt.Header.with_label header l }
          | None -> plain
        in
        let outer =
          Netpkt.Packet.encapsulate ~src:proxy.Mbox.Proxy.addr
            ~dst:mb.Mbox.Middlebox.addr inner
        in
        send w ~from_router:proxy.Mbox.Proxy.router (Data (outer, now, aid)))
  in
  match Policy.Flow_cache.lookup cache ~now flow with
  | Some { actions = Some a; rule_id; _ } when Policy.Action.is_permit a ->
    w.counters.cache_hits <- w.counters.cache_hits + 1;
    audit_admit
      ~admission:(Audit.Event.Permit (Some rule_id))
      ~version:(installed_version w entity) ~label:None;
    note_cache_bypass w ~proxy:proxy_id ~flow ~aid;
    send w ~from_router:proxy.Mbox.Proxy.router (Data (plain, now, aid))
  | Some ({ actions = Some _; rule_id; label; cfg_version; _ } as entry) ->
    w.counters.cache_hits <- w.counters.cache_hits + 1;
    note_traffic w fs ~rule_id;
    let rule = Hashtbl.find w.rule_by_id rule_id in
    let ls_path = entry.Policy.Flow_cache.ls_ready && w.cfg.label_switching in
    audit_admit
      ~admission:
        (Audit.Event.Chained
           { rule_id;
             mode = (if ls_path then Audit.Event.Label else Audit.Event.Tunnel) })
      ~version:(decision_version w ~admitted:cfg_version entity)
      ~label;
    if ls_path then begin
      (* Established label-switched path: embed the label, address the
         packet straight to the first middlebox, no outer header. *)
      let nf = List.hd rule.Policy.Rule.actions in
      match controller_next_hop w ~admitted:cfg_version entity ~rule ~nf flow with
      | Error `No_live_candidate ->
        w.counters.dropped <- w.counters.dropped + 1;
        audit_emit w (fun () ->
            Audit.Event.Dropped
              { aid; time = now; reason = Audit.Event.No_candidate });
        policy_violation w
      | Ok mb ->
        audit_emit w (fun () ->
            Audit.Event.Steered
              { aid;
                time = now;
                entity;
                rule_id;
                nf;
                version = decision_version w ~admitted:cfg_version entity;
                view = steer_view w;
                mbox = mb.Mbox.Middlebox.id });
        let header =
          Netpkt.Header.with_dst
            (Netpkt.Header.with_label header (Option.get label))
            mb.Mbox.Middlebox.addr
        in
        send w ~from_router:proxy.Mbox.Proxy.router
          (Data ({ plain with Netpkt.Packet.header }, now, aid))
    end
    else tunnel_first ~rule ~label ~admitted:cfg_version
  | Some { actions = None; _ } ->
    w.counters.cache_negative_hits <- w.counters.cache_negative_hits + 1;
    audit_admit ~admission:Audit.Event.Unmatched
      ~version:(installed_version w entity) ~label:None;
    note_cache_bypass w ~proxy:proxy_id ~flow ~aid;
    send w ~from_router:proxy.Mbox.Proxy.router (Data (plain, now, aid))
  | None -> (
    w.counters.lookups <- w.counters.lookups + 1;
    match w.proxy_match.(proxy_id) flow with
    | None ->
      ignore (Policy.Flow_cache.insert_negative cache ~now flow);
      audit_admit ~admission:Audit.Event.Unmatched
        ~version:(installed_version w entity) ~label:None;
      send w ~from_router:proxy.Mbox.Proxy.router (Data (plain, now, aid))
    | Some rule when Policy.Action.is_permit rule.Policy.Rule.actions ->
      ignore
        (Policy.Flow_cache.insert cache ~now flow ~rule_id:rule.Policy.Rule.id
           ~actions:Policy.Action.permit ());
      audit_admit
        ~admission:(Audit.Event.Permit (Some rule.Policy.Rule.id))
        ~version:(installed_version w entity) ~label:None;
      send w ~from_router:proxy.Mbox.Proxy.router (Data (plain, now, aid))
    | Some rule ->
      let label =
        if w.cfg.label_switching then begin
          let l = w.mutable_label.(proxy_id) land Netpkt.Header.max_label in
          w.mutable_label.(proxy_id) <- l + 1;
          Stdx.Flat_table.replace w.proxy_label_index.(proxy_id) l 0 flow;
          Some l
        end
        else None
      in
      note_traffic w fs ~rule_id:rule.Policy.Rule.id;
      let admitted = installed_version w entity in
      ignore
        (Policy.Flow_cache.insert cache ~now flow ~rule_id:rule.Policy.Rule.id
           ~actions:rule.Policy.Rule.actions ?label ~cfg_version:admitted ());
      audit_admit
        ~admission:
          (Audit.Event.Chained
             { rule_id = rule.Policy.Rule.id; mode = Audit.Event.Tunnel })
        ~version:admitted ~label;
      audit_emit w (fun () ->
          Audit.Event.Cache_insert
            { proxy = proxy_id; time = now; flow; version = admitted });
      tunnel_first ~rule ~label ~admitted)

(* ---- Fault-schedule execution ----------------------------------- *)

(* A mid-run topology change: swap in the OSPF session's reconverged
   tables (and, under ECMP, equal-cost tables recomputed on the
   surviving graph).  In-flight segments already scheduled keep their
   old paths — they were committed to the wire before the change. *)
let refresh_tables w session =
  w.tables <- Ospf.Session.tables session;
  match w.ecmp_tables with
  | None -> ()
  | Some _ ->
    w.ecmp_tables <-
      Some (Netgraph.Routing.build_all_ecmp (Ospf.Session.surviving_graph session))

(* ---- Silent-corruption injection -------------------------------- *)

(* The k-th live entry of a label table, in its (stable, unseeded)
   iteration order — deterministic for a fixed mutation history, so a
   seeded index draw picks the same victim on every run. *)
let nth_label_entry t k =
  let i = ref 0 and found = ref None in
  Mbox.Label_table.iter
    (fun key entry ->
      if !i = k then found := Some (key, entry);
      incr i)
    t;
  Option.get !found

(* Rewrite one label entry's steering field to some *other* middlebox
   address — the bit-flip that silently mis-steers every later packet
   of the path.  Degenerate single-middlebox deployments have no wrong
   address to point at, so the event no-ops there. *)
let inject_label_corrupt w cs id =
  let t = w.mbox_labels.(id) in
  let n = Mbox.Label_table.length t in
  if (not (mbox_is_down w id)) && n > 0 then begin
    let key, entry = nth_label_entry t (Stdx.Rng.int cs.crng n) in
    let mboxes = w.dep.Sdm.Deployment.middleboxes in
    let current =
      match (entry.Mbox.Label_table.next, entry.Mbox.Label_table.final_dst) with
      | Some a, _ | None, Some a -> a
      | None, None -> assert false (* Label_table.insert forbids *)
    in
    let pick = Stdx.Rng.int cs.crng (Array.length mboxes) in
    let redirect =
      let a = mboxes.(pick).Mbox.Middlebox.addr in
      if a <> current then a
      else mboxes.((pick + 1) mod Array.length mboxes).Mbox.Middlebox.addr
    in
    if redirect <> current && Mbox.Label_table.unsafe_corrupt t key ~redirect
    then
      register_corruption w cs ~dev:(dev_of_mbox w id)
        ~kind:Audit.Event.Wrong_steer
        ~site:
          (Audit.Event.Label_site
             { mbox = id; src = key.Mbox.Label_table.src;
               label = key.Mbox.Label_table.label })
  end

let inject_label_drop w cs id =
  let t = w.mbox_labels.(id) in
  let n = Mbox.Label_table.length t in
  if (not (mbox_is_down w id)) && n > 0 then begin
    let key, _ = nth_label_entry t (Stdx.Rng.int cs.crng n) in
    if Mbox.Label_table.unsafe_drop t key then
      register_corruption w cs ~dev:(dev_of_mbox w id)
        ~kind:Audit.Event.Lost_entry
        ~site:
          (Audit.Event.Label_site
             { mbox = id; src = key.Mbox.Label_table.src;
               label = key.Mbox.Label_table.label })
  end

(* Poison one proxy cache entry.  Only chained (positive, non-permit)
   entries make observable victims: half the draws flip the entry to a
   bogus negative, half to an unconditional permit — either way later
   packets of the flow skip the chain their policy demands. *)
let inject_cache_poison w cs id =
  let c = w.proxy_caches.(id) in
  let victims = ref [] and n = ref 0 in
  Policy.Flow_cache.iter
    (fun flow e ->
      match e.Policy.Flow_cache.actions with
      | Some a when not (Policy.Action.is_permit a) ->
        victims := flow :: !victims;
        incr n
      | Some _ | None -> ())
    c;
  if !n > 0 then begin
    let flow = List.nth (List.rev !victims) (Stdx.Rng.int cs.crng !n) in
    let poisoned =
      if Stdx.Rng.int cs.crng 2 = 0 then
        Policy.Flow_cache.unsafe_poison_negative c flow
      else
        Policy.Flow_cache.unsafe_poison_actions c flow
          ~actions:Policy.Action.permit
    in
    if poisoned then
      register_corruption w cs ~dev:id ~kind:Audit.Event.Poisoned
        ~site:(Audit.Event.Cache_site { proxy = id; flow })
  end

(* Silently regress a device's installed version by one: the device
   keeps acking the lost version, so the ack-driven reconciliation
   loop can never notice — only the sweep's version report can.  A
   device still at version 0, or one already carrying an unrepaired
   loss, has nothing further inside the certified staged window to
   take back, so the event no-ops. *)
let inject_config_lose w cs dev =
  match w.live with
  | None -> ()
  | Some ls ->
    if ls.device_version.(dev) > 0 && not (Hashtbl.mem cs.config_sites dev)
    then begin
      ls.device_version.(dev) <- ls.device_version.(dev) - 1;
      register_corruption w cs ~dev ~kind:Audit.Event.Lost_config
        ~site:(Audit.Event.Config_site { dev })
    end

(* Re-install one entry a past config install had purged (recorded in
   the graveyard at purge time): stale steering state coming back from
   the dead after the partition heals.  If the key is live again the
   resurrection loses the race and no-ops. *)
let inject_stale_resurrect w cs id =
  if not (mbox_is_down w id) then
    match cs.graveyard.(id) with
    | [] -> ()
    | g ->
      let k = Stdx.Rng.int cs.crng (List.length g) in
      let key, entry = List.nth g k in
      cs.graveyard.(id) <- List.filteri (fun i _ -> i <> k) g;
      if Mbox.Label_table.unsafe_resurrect w.mbox_labels.(id) key entry then
        register_corruption w cs ~dev:(dev_of_mbox w id)
          ~kind:Audit.Event.Resurrected
          ~site:
            (Audit.Event.Label_site
               { mbox = id; src = key.Mbox.Label_table.src;
                 label = key.Mbox.Label_table.label })

let apply_fault w f what =
  let now = Dess.Engine.now w.engine in
  match what with
  | Fault.Schedule.Mbox_crash id ->
    Fault.Detector.crash f.detector ~now id;
    (* A crash loses the box's soft state: its flow cache and label
       table come back empty if the box ever recovers.  Any injected
       soft-state corruption living there dies with it — repair by
       destruction, which the registry must record or the Repair
       invariant would demand fixing state that no longer exists. *)
    w.mbox_caches.(id) <-
      Policy.Flow_cache.create ~timeout:w.cfg.cache_timeout
        ?capacity:w.cfg.cache_capacity ();
    w.mbox_labels.(id) <-
      Mbox.Label_table.create ~timeout:w.cfg.label_timeout ();
    w.busy_until.(id) <- now;
    (match f.corrupt with
    | None -> ()
    | Some cs ->
      let dev = dev_of_mbox w id in
      Hashtbl.iter
        (fun _ r ->
          match r.cr_site with
          | Audit.Event.Label_site { mbox; _ }
            when mbox = id && not r.cr_repaired ->
            resolve_corruption w cs ~dev ~action:Audit.Event.Purged r
          | _ -> ())
        cs.records)
  | Fault.Schedule.Mbox_recover id -> Fault.Detector.recover f.detector ~now id
  | Fault.Schedule.Link_fail (u, v) -> (
    match f.session with
    | Some s ->
      Ospf.Session.fail_link s u v;
      refresh_tables w s
    | None -> assert false (* session exists iff the schedule has link events *))
  | Fault.Schedule.Link_restore (u, v) -> (
    match f.session with
    | Some s ->
      Ospf.Session.recover_link s u v;
      refresh_tables w s
    | None -> assert false)
  | Fault.Schedule.Ctrl_crash id -> (
    (* The replica's in-flight chains die via their [replica_up] and
       leadership guards; its acceptor state is durable.  Re-election
       happens one detection delay later (scheduled alongside the
       fault), not here. *)
    match w.live with
    | Some ls when id < Array.length ls.replica_up ->
      ls.replica_up.(id) <- false
    | _ -> ())
  | Fault.Schedule.Ctrl_recover id -> (
    (* Recovery is quiet: the replica rejoins as a standby (stable
       leadership — no failback) and resumes voting from its durable
       acceptor state. *)
    match w.live with
    | Some ls when id < Array.length ls.replica_up ->
      ls.replica_up.(id) <- true
    | _ -> ())
  (* Silent state corruption: each event draws its victim from the
     corruption RNG (a derived child of the loss stream, so the loss
     draws are unperturbed) and registers the ground truth with the
     auditor.  Without a [corrupt] state (no corruption events in the
     schedule) these arms are unreachable. *)
  | Fault.Schedule.Label_corrupt id -> (
    match f.corrupt with
    | Some cs -> inject_label_corrupt w cs id
    | None -> ())
  | Fault.Schedule.Label_drop id -> (
    match f.corrupt with
    | Some cs -> inject_label_drop w cs id
    | None -> ())
  | Fault.Schedule.Cache_poison id -> (
    match f.corrupt with
    | Some cs -> inject_cache_poison w cs id
    | None -> ())
  | Fault.Schedule.Config_lose dev -> (
    match f.corrupt with
    | Some cs -> inject_config_lose w cs dev
    | None -> ())
  | Fault.Schedule.Stale_resurrect id -> (
    match f.corrupt with
    | Some cs -> inject_stale_resurrect w cs id
    | None -> ())

(* ---- Live control plane ----------------------------------------- *)

(* Hop count from the controller's attachment router to a device,
   walking the *current* routing tables (so a partition shows up as
   None, and a reconverged detour is priced at its real length).
   Control traffic rides shortest paths even under ECMP — per-packet
   spraying buys nothing for a unicast config push. *)
let route_hops w ~from ~target =
  if from = target then Some 0
  else begin
    let n = Array.length w.tables in
    let rec go r acc =
      if r = target then Some acc
      else if acc > n then None (* routing loop guard *)
      else
        match Netgraph.Routing.next_hop w.tables.(r) target with
        | None -> None
        | Some h -> go h (acc + 1)
    in
    go from 0
  end

(* A device installs a configuration version: monotone, idempotent
   (duplicate deliveries from retried pushes are harmless).  The
   config store survives crashes — unlike the soft flow state — so a
   recovering box resumes from whatever version it last installed.
   On install, a middlebox purges label entries more than one version
   old: only the adjacent version stays staged, which is exactly the
   mix Verify.check_mixed certified before the push went out. *)
let install_config w ls ~dev ~version =
  if version > ls.device_version.(dev) then begin
    ls.device_version.(dev) <- version;
    audit_emit w (fun () ->
        Audit.Event.Config_install
          { dev; time = Dess.Engine.now w.engine; version });
    (match dev_entity w dev with
    | Mbox.Entity.Middlebox id ->
      (* When the schedule can resurrect stale entries, remember what
         this install is about to purge — the resurrection pool is
         exactly the state that legitimately died here. *)
      (match corrupt_of w with
      | Some cs when cs.want_graveyard ->
        Mbox.Label_table.iter
          (fun key e ->
            if e.Mbox.Label_table.version < version - 1 then
              cs.graveyard.(id) <- (key, e) :: cs.graveyard.(id))
          w.mbox_labels.(id)
      | _ -> ());
      ignore
        (Mbox.Label_table.purge_versions_below w.mbox_labels.(id)
           ~version:(version - 1))
    | Mbox.Entity.Proxy _ -> ());
    (* A fresh install heals a silently regressed device: the device
       is back on a published version at least as new as the one the
       loss took back. *)
    match corrupt_of w with
    | Some cs -> (
      match Hashtbl.find_opt cs.config_sites dev with
      | Some cid ->
        resolve_cid w cs ~cid ~dev ~action:(Audit.Event.Reinstalled version)
      | None -> ())
    | None -> ()
  end

(* Push one version to one device: per-device ack/retry with
   exponential backoff over the lossy control channel.  Like the label
   control machinery, the retransmission timer is modelled as firing
   only when a transmission (config or ack leg) was actually lost —
   receivers are idempotent, so suppressing the redundant duplicates a
   real timer would also generate is observationally equivalent.  A
   chain whose version has been superseded, or whose device has
   meanwhile acked, dies silently; the reconciliation loop is the
   backstop once retries are exhausted. *)
let rec push_config w ls ~dev ~version ~attempt =
  if
    version = ls.latest
    && ls.device_acked.(dev) < version
    && ls.replica_up.(ls.leader)
  then begin
    let entity = dev_entity w dev in
    let target = Sdm.Deployment.entity_router w.dep entity in
    match route_hops w ~from:ls.replica_router.(ls.leader) ~target with
    | None ->
      (* The controller is partitioned from the device: no retry timer
         helps until routing heals.  The device keeps its last-known-
         good configuration; reconciliation re-pushes later. *)
      w.counters.cfg_degraded <- w.counters.cfg_degraded + 1
    | Some h ->
      w.counters.cfg_pushes <- w.counters.cfg_pushes + 1;
      w.counters.cfg_bytes <-
        w.counters.cfg_bytes
        + Controlplane.entity_bytes ls.configs.(version) entity;
      let one_way = float_of_int (h + 1) *. w.cfg.link_delay in
      let retry () =
        if attempt < ls.lcfg.push_max_retries then begin
          w.entity_ctrl_retries.(dev) <- w.entity_ctrl_retries.(dev) + 1;
          let delay = push_backoff_delay ls.lcfg ~attempt in
          ignore
            (Dess.Engine.schedule w.engine ~delay (fun _ ->
                 push_config w ls ~dev ~version ~attempt:(attempt + 1)))
        end
      in
      let fwd_lost = control_loss_draw w in
      let target_down =
        match entity with
        | Mbox.Entity.Middlebox id -> mbox_is_down w id
        | Mbox.Entity.Proxy _ -> false
      in
      if fwd_lost || target_down then begin
        w.counters.cfg_lost <- w.counters.cfg_lost + 1;
        w.entity_ctrl_lost.(dev) <- w.entity_ctrl_lost.(dev) + 1;
        retry ()
      end
      else begin
        ignore
          (Dess.Engine.schedule w.engine ~delay:one_way (fun _ ->
               install_config w ls ~dev ~version));
        let ack_lost = control_loss_draw w in
        if ack_lost then begin
          w.counters.cfg_lost <- w.counters.cfg_lost + 1;
          w.entity_ctrl_lost.(dev) <- w.entity_ctrl_lost.(dev) + 1;
          retry ()
        end
        else
          ignore
            (Dess.Engine.schedule w.engine ~delay:(2.0 *. one_way) (fun _ ->
                 if version > ls.device_acked.(dev) then begin
                   ls.device_acked.(dev) <- version;
                   w.counters.cfg_acks <- w.counters.cfg_acks + 1
                 end))
      end
  end

(* ---- Anti-entropy sweep ------------------------------------------ *)

(* Wire cost of the sweep protocol: an 8-byte digest query down, a
   24-byte report back (digest, installed version, entry count). *)
let sweep_query_bytes = 8
let sweep_reply_bytes = 24

(* The device-side half of a sweep visit: compare the incrementally
   maintained digest against a fresh walk of the table.  On mismatch,
   scrub — purge entries whose checksum disagrees with their payload
   (bit flips, poisonings) or whose version fell out of the staged
   window (resurrections), and rebase the digest so silently dropped
   entries stop haunting it.  Each purged site's corruption is
   resolved; whatever registered corruption remains at this device
   afterwards no longer has any state to find (expired, evicted, or
   crashed away) and is retired as rebased. *)
let sweep_check w ~dev =
  match corrupt_of w with
  | None -> ()
  | Some cs ->
    let detect () =
      w.counters.corrupt_detected <- w.counters.corrupt_detected + 1;
      audit_emit w (fun () ->
          Audit.Event.Corrupt_detect { time = Dess.Engine.now w.engine; dev })
    in
    (match dev_entity w dev with
    | Mbox.Entity.Proxy i ->
      let c = w.proxy_caches.(i) in
      if
        not
          (Int64.equal (Policy.Flow_cache.digest c)
             (Policy.Flow_cache.recompute_digest c))
      then begin
        detect ();
        List.iter
          (fun flow ->
            match Hashtbl.find_opt cs.cache_sites (i, flow) with
            | Some cid ->
              resolve_cid w cs ~cid ~dev ~action:Audit.Event.Purged
            | None -> ())
          (Policy.Flow_cache.scrub c)
      end
    | Mbox.Entity.Middlebox id ->
      if not (mbox_is_down w id) then begin
        let t = w.mbox_labels.(id) in
        if
          not
            (Int64.equal (Mbox.Label_table.digest t)
               (Mbox.Label_table.recompute_digest t))
        then begin
          detect ();
          let floor =
            match w.live with
            | Some ls -> ls.device_version.(dev) - 1
            | None -> 0
          in
          List.iter
            (fun (key : Mbox.Label_table.key) ->
              match
                Hashtbl.find_opt cs.label_sites (id, key.src, key.label)
              with
              | Some cid ->
                resolve_cid w cs ~cid ~dev ~action:Audit.Event.Purged
              | None -> ())
            (Mbox.Label_table.scrub t ~version_floor:floor)
        end
      end);
    Hashtbl.iter
      (fun _ r ->
        if r.cr_dev = dev && not r.cr_repaired then
          match r.cr_site with
          | Audit.Event.Config_site _ -> () (* repaired by re-install only *)
          | Audit.Event.Label_site { mbox; src; label } ->
            Mbox.Label_table.remove w.mbox_labels.(mbox)
              { Mbox.Label_table.src; label };
            resolve_corruption w cs ~dev ~action:Audit.Event.Rebased r
          | Audit.Event.Cache_site _ ->
            resolve_corruption w cs ~dev ~action:Audit.Event.Rebased r)
      cs.records

(* The report half of a sweep visit, back at the controller: a device
   whose installed version trails the latest published one is re-pushed
   — crucially *resetting its ack watermark first*, because a silently
   lost install left the stale ack in place and the ack-driven
   reconciliation loop trusts it. *)
let sweep_reply w ls ~dev =
  let v = ls.device_version.(dev) in
  if v < ls.latest && ls.replica_up.(ls.leader) then begin
    if ls.device_acked.(dev) > v then ls.device_acked.(dev) <- v;
    push_config w ls ~dev ~version:ls.latest ~attempt:0
  end

(* Visit one device: query and report ride the same lossy control
   channel as config pushes, with the same capped-backoff retry
   ladder.  The query reaching the device is what triggers the local
   scrub; losing only the report costs the version check, not the
   repair of soft state. *)
let rec sweep_device w ls ~dev ~attempt =
  if ls.replica_up.(ls.leader) then begin
    let entity = dev_entity w dev in
    let target = Sdm.Deployment.entity_router w.dep entity in
    match route_hops w ~from:ls.replica_router.(ls.leader) ~target with
    | None ->
      (* Partitioned: no retry timer helps until routing heals; the
         next round revisits. *)
      w.counters.cfg_degraded <- w.counters.cfg_degraded + 1
    | Some h ->
      let one_way = float_of_int (h + 1) *. w.cfg.link_delay in
      let retry () =
        if attempt < ls.lcfg.push_max_retries then begin
          w.entity_ctrl_retries.(dev) <- w.entity_ctrl_retries.(dev) + 1;
          ignore
            (Dess.Engine.schedule w.engine
               ~delay:(push_backoff_delay ls.lcfg ~attempt) (fun _ ->
                 sweep_device w ls ~dev ~attempt:(attempt + 1)))
        end
      in
      w.counters.sweep_msgs <- w.counters.sweep_msgs + 1;
      w.counters.sweep_bytes <- w.counters.sweep_bytes + sweep_query_bytes;
      let target_down =
        match entity with
        | Mbox.Entity.Middlebox id -> mbox_is_down w id
        | Mbox.Entity.Proxy _ -> false
      in
      if control_loss_draw w || target_down then begin
        w.counters.sweep_lost <- w.counters.sweep_lost + 1;
        w.entity_ctrl_lost.(dev) <- w.entity_ctrl_lost.(dev) + 1;
        retry ()
      end
      else begin
        ignore
          (Dess.Engine.schedule w.engine ~delay:one_way (fun _ ->
               sweep_check w ~dev));
        w.counters.sweep_msgs <- w.counters.sweep_msgs + 1;
        w.counters.sweep_bytes <- w.counters.sweep_bytes + sweep_reply_bytes;
        if control_loss_draw w then begin
          w.counters.sweep_lost <- w.counters.sweep_lost + 1;
          w.entity_ctrl_lost.(dev) <- w.entity_ctrl_lost.(dev) + 1;
          retry ()
        end
        else
          ignore
            (Dess.Engine.schedule w.engine ~delay:(2.0 *. one_way) (fun _ ->
                 sweep_reply w ls ~dev))
      end
  end

(* One anti-entropy round: visit every device, then re-arm.  The loop
   keeps ticking through the traffic window and until every registered
   corruption is repaired, with the same generous round cap the
   reconciliation loop uses as its safety valve. *)
let rec sweep_round w ls ~period =
  if ls.replica_up.(ls.leader) then begin
    w.counters.sweep_rounds <- w.counters.sweep_rounds + 1;
    for dev = 0 to n_devices w - 1 do
      sweep_device w ls ~dev ~attempt:0
    done
  end;
  let outstanding =
    match corrupt_of w with
    | None -> false
    | Some cs ->
      Hashtbl.fold
        (fun _ r acc -> acc || not r.cr_repaired)
        cs.records false
  in
  let now = Dess.Engine.now w.engine in
  if (now < ls.horizon || outstanding) && w.counters.sweep_rounds < 10_000 then
    ignore
      (Dess.Engine.schedule w.engine ~delay:period (fun _ ->
           sweep_round w ls ~period))

(* ---- Quorum rounds (replicated controller) ----------------------- *)

let quorum_n ls = Array.length ls.replica_up

(* Publish a committed configuration: append it to the staged window,
   bump the shared version, emit the audit events, and push to every
   device from the leader's router.  Only [maybe_commit] calls this —
   the quorum commit is the single gate into the staged window. *)
let publish_committed w ls next =
  ls.configs <- Array.append ls.configs [| next |];
  ls.latest <- ls.latest + 1;
  w.counters.reopts <- w.counters.reopts + 1;
  (match w.audit with
  | None -> ()
  | Some a ->
    Audit.Checker.register_config a ~version:ls.latest next;
    Audit.Checker.record a
      (Audit.Event.Config_publish
         { time = Dess.Engine.now w.engine; version = ls.latest }));
  for dev = 0 to n_devices w - 1 do
    push_config w ls ~dev ~version:ls.latest ~attempt:0
  done

(* Spread a commit to one standby replica over the same lossy control
   channel the config pushes ride, with the same capped-backoff retry
   ladder.  [Acceptor.commit] is idempotent, so duplicates from retries
   are harmless; a partitioned or crashed standby simply stays at its
   last-known-good commit until the reconciliation of a later round
   reaches it. *)
let rec commit_notice w ls ~replica ~version ~digest ~attempt =
  if
    ls.replica_up.(ls.leader)
    && Quorum.Acceptor.committed ls.acceptors.(replica) < version
  then begin
    match
      route_hops w ~from:ls.replica_router.(ls.leader)
        ~target:ls.replica_router.(replica)
    with
    | None -> () (* partitioned: no retry timer helps until routing heals *)
    | Some h ->
      w.counters.q_msgs <- w.counters.q_msgs + 1;
      let one_way = float_of_int (h + 1) *. w.cfg.link_delay in
      let retry () =
        if attempt < ls.lcfg.push_max_retries then
          ignore
            (Dess.Engine.schedule w.engine
               ~delay:(push_backoff_delay ls.lcfg ~attempt) (fun _ ->
                 commit_notice w ls ~replica ~version ~digest
                   ~attempt:(attempt + 1)))
      in
      if control_loss_draw w || not ls.replica_up.(replica) then begin
        w.counters.q_lost <- w.counters.q_lost + 1;
        retry ()
      end
      else
        ignore
          (Dess.Engine.schedule w.engine ~delay:one_way (fun _ ->
               if
                 ls.replica_up.(replica)
                 && Quorum.Acceptor.committed ls.acceptors.(replica) < version
               then
                 match
                   Quorum.Acceptor.commit ls.acceptors.(replica) ~version
                     ~digest
                 with
                 | Ok () ->
                   audit_emit w (fun () ->
                       Audit.Event.Quorum_commit
                         {
                           time = Dess.Engine.now w.engine;
                           version;
                           replica;
                           digest;
                         })
                 | Error _ -> ()))
  end

(* Commit as soon as the votes form a quorum: the leader commits its
   own acceptor, publishes the pending candidate, and spreads the
   commit to the standbys.  With one replica this runs synchronously
   inside the proposal — no quorum traffic ever hits the wire. *)
let maybe_commit w ls r =
  if Quorum.Round.outcome r = Quorum.Round.Pending && Quorum.Round.has_quorum r
  then begin
    Quorum.Round.mark_committed r;
    let version = Quorum.Round.version r in
    let digest = Quorum.Round.digest r in
    w.counters.q_commits <- w.counters.q_commits + 1;
    ignore (Quorum.Acceptor.commit ls.acceptors.(ls.leader) ~version ~digest);
    audit_emit w (fun () ->
        Audit.Event.Quorum_commit
          { time = Dess.Engine.now w.engine; version; replica = ls.leader; digest });
    (match ls.pending with
    | Some next ->
      ls.pending <- None;
      publish_committed w ls next
    | None -> ());
    for i = 0 to quorum_n ls - 1 do
      if i <> ls.leader then
        commit_notice w ls ~replica:i ~version ~digest ~attempt:0
    done
  end

(* The minority-side rule: once the reachable votes can no longer form
   a quorum, the round is dead and the candidate is discarded — the
   control plane refuses to publish and degrades to last-known-good. *)
let abandon_if_dead w ls r =
  if
    Quorum.Round.outcome r = Quorum.Round.Pending
    && not (Quorum.Round.can_reach_quorum r)
  then begin
    Quorum.Round.mark_abandoned r;
    w.counters.q_aborts <- w.counters.q_aborts + 1;
    w.counters.cfg_degraded <- w.counters.cfg_degraded + 1;
    ls.pending <- None
  end

(* Propose the round's candidate to one standby acceptor: proposal out,
   vote back, both legs over the lossy control channel with the capped
   retry ladder (mirrors [push_config]'s fwd/ack structure).  A refusal
   or exhausted retries loses this acceptor's vote for the round; a
   partition loses it immediately. *)
let rec propose_to w ls r ~replica ~attempt =
  if Quorum.Round.outcome r = Quorum.Round.Pending && ls.replica_up.(ls.leader)
  then begin
    let version = Quorum.Round.version r in
    let digest = Quorum.Round.digest r in
    let retry () =
      if attempt < ls.lcfg.push_max_retries then
        ignore
          (Dess.Engine.schedule w.engine
             ~delay:(push_backoff_delay ls.lcfg ~attempt) (fun _ ->
               propose_to w ls r ~replica ~attempt:(attempt + 1)))
      else begin
        Quorum.Round.fail r ~acceptor:replica;
        abandon_if_dead w ls r
      end
    in
    match
      route_hops w ~from:ls.replica_router.(ls.leader)
        ~target:ls.replica_router.(replica)
    with
    | None ->
      (* Partitioned from this acceptor: its vote is lost to the round
         (no retry timer helps until routing heals, and the round will
         long be superseded by then). *)
      Quorum.Round.fail r ~acceptor:replica;
      abandon_if_dead w ls r
    | Some h ->
      w.counters.q_msgs <- w.counters.q_msgs + 1;
      let one_way = float_of_int (h + 1) *. w.cfg.link_delay in
      let fwd_lost = control_loss_draw w in
      if fwd_lost || not ls.replica_up.(replica) then begin
        w.counters.q_lost <- w.counters.q_lost + 1;
        retry ()
      end
      else begin
        (* The proposal arrives after one_way; the acceptor's verdict
           rides back over the same lossy channel. *)
        let verdict = ref None in
        ignore
          (Dess.Engine.schedule w.engine ~delay:one_way (fun _ ->
               if ls.replica_up.(replica) then begin
                 let v =
                   Quorum.Acceptor.receive ls.acceptors.(replica) ~version
                     ~digest
                 in
                 (match v with
                 | Quorum.Acceptor.Accept ->
                   audit_emit w (fun () ->
                       Audit.Event.Quorum_accept
                         {
                           time = Dess.Engine.now w.engine;
                           version;
                           replica;
                           digest;
                         })
                 | Repeat | Stale | Conflict -> ());
                 verdict := Some v
               end));
        w.counters.q_msgs <- w.counters.q_msgs + 1;
        let vote_lost = control_loss_draw w in
        if vote_lost then begin
          w.counters.q_lost <- w.counters.q_lost + 1;
          (* The leader re-sends the whole proposal; acceptance is
             idempotent, so the duplicate is harmless. *)
          retry ()
        end
        else
          ignore
            (Dess.Engine.schedule w.engine ~delay:(2.0 *. one_way) (fun _ ->
                 match !verdict with
                 | Some (Quorum.Acceptor.Accept | Quorum.Acceptor.Repeat)
                   when Quorum.Round.outcome r = Quorum.Round.Pending ->
                   Quorum.Round.accept r ~acceptor:replica;
                   maybe_commit w ls r
                 | Some (Quorum.Acceptor.Stale | Quorum.Acceptor.Conflict) ->
                   Quorum.Round.fail r ~acceptor:replica;
                   abandon_if_dead w ls r
                 | None ->
                   (* the replica crashed while the proposal was in
                      flight — no vote will come; keep retrying *)
                   retry ()
                 | Some _ -> ()))
      end
  end

(* Re-optimize from what the run has measured: rebuild candidate sets
   around the believed-failed boxes, re-solve the LP over the in-run
   traffic matrix, and submit the result to a quorum round — the
   candidate is published as a new version only once a quorum of
   replicas accepted it, and only after Verify certified both the new
   configuration alone and every reachable version mix with the
   still-installed previous one.  A failed solve, a verification veto,
   or a dead round keeps the last-known-good configuration (graceful
   degradation, counted). *)
let reoptimize w ls =
  let now = Dess.Engine.now w.engine in
  if ls.replica_up.(ls.leader) then begin
    let failed =
      match w.fault with
      | Some f -> Fault.Detector.believed_failed f.detector ~now
      | None -> []
    in
    let current = ls.configs.(ls.latest) in
    match
      Sdm.Controller.reoptimize current ~failed
        ~use_warm:ls.lcfg.warm_start ~traffic:ls.meas ()
    with
    | Error _ -> w.counters.cfg_degraded <- w.counters.cfg_degraded + 1
    | Ok next -> (
      (* Solver-work accounting happens whether or not verification or
         the quorum later vetoes the plan — the pivots were spent. *)
      (match next.Sdm.Controller.lp with
      | Some lp ->
        w.counters.reopt_pivots <-
          w.counters.reopt_pivots + lp.Sdm.Lp_formulation.lp_pivots;
        w.counters.reopt_phase1 <-
          w.counters.reopt_phase1 + lp.Sdm.Lp_formulation.lp_phase1_pivots;
        if lp.Sdm.Lp_formulation.lp_warm_used then
          w.counters.reopt_warm <- w.counters.reopt_warm + 1;
        if lp.Sdm.Lp_formulation.lp_fallback then
          w.counters.reopt_fallback <- w.counters.reopt_fallback + 1
      | None -> ());
      match
        match Sdm.Verify.check next with
        | Error _ as e -> e
        | Ok () -> Sdm.Verify.check_window [ current; next ]
      with
      | Error _ -> w.counters.cfg_degraded <- w.counters.cfg_degraded + 1
      | Ok () ->
        (* A fresher candidate supersedes any round still in flight. *)
        (match ls.round with
        | Some r when Quorum.Round.outcome r = Quorum.Round.Pending ->
          Quorum.Round.mark_abandoned r;
          w.counters.q_aborts <- w.counters.q_aborts + 1
        | _ -> ());
        let version = ls.latest + 1 in
        (* Structural digest of the candidate, salted with the version
           so re-proposals of distinct candidates under one version
           number stay distinguishable to the auditor. *)
        let digest =
          Int64.logxor
            (Sdm.Controller.fingerprint next)
            (Int64.mul 0x9e3779b97f4a7c15L (Int64.of_int version))
        in
        let r =
          Quorum.Round.start ls.lcfg.quorum ~n:(quorum_n ls) ~version ~digest
        in
        ls.round <- Some r;
        ls.pending <- Some next;
        w.counters.q_rounds <- w.counters.q_rounds + 1;
        audit_emit w (fun () ->
            Audit.Event.Quorum_propose
              { time = now; version; replica = ls.leader; digest });
        (* The leader votes for its own proposal locally — no message,
           no loss draw. *)
        (match
           Quorum.Acceptor.receive ls.acceptors.(ls.leader) ~version ~digest
         with
        | Quorum.Acceptor.Accept ->
          Quorum.Round.accept r ~acceptor:ls.leader;
          audit_emit w (fun () ->
              Audit.Event.Quorum_accept
                { time = now; version; replica = ls.leader; digest })
        | Repeat -> Quorum.Round.accept r ~acceptor:ls.leader
        | Stale | Conflict -> Quorum.Round.fail r ~acceptor:ls.leader);
        maybe_commit w ls r;
        if Quorum.Round.outcome r = Quorum.Round.Pending then
          for i = 0 to quorum_n ls - 1 do
            if i <> ls.leader then propose_to w ls r ~replica:i ~attempt:0
          done)
  end

(* A detection delay after a controller crash: if the dead replica led,
   the lowest-id live replica takes over — deterministic re-election —
   and immediately re-optimizes, re-doing whatever in-flight work died
   with the old leader. *)
let handle_ctrl_crash w ls crashed =
  if ls.leader = crashed && not ls.replica_up.(crashed) then begin
    let n = quorum_n ls in
    let rec first i =
      if i >= n then None
      else if ls.replica_up.(i) then Some i
      else first (i + 1)
    in
    match first 0 with
    | None -> () (* total control-plane outage: devices keep running *)
    | Some nl ->
      let prev = ls.leader in
      ls.leader <- nl;
      w.counters.elections <- w.counters.elections + 1;
      audit_emit w (fun () ->
          Audit.Event.Leader_elect
            { time = Dess.Engine.now w.engine; replica = nl; previous = prev });
      if Sdm.Measurement.total ls.meas > 0.0 then reoptimize w ls
  end

(* The reconciliation loop: periodically re-push the latest version to
   every device whose ack is missing, however its retry chain died
   (loss burst, crash window, partition).  Keeps ticking through the
   traffic window and until every device has acked, with a generous
   round cap as the safety valve against a permanently partitioned
   device. *)
let rec reconcile w ls =
  ls.reconcile_rounds <- ls.reconcile_rounds + 1;
  let stale = ref false in
  Array.iteri
    (fun dev acked ->
      if acked < ls.latest then begin
        stale := true;
        push_config w ls ~dev ~version:ls.latest ~attempt:0
      end)
    ls.device_acked;
  let now = Dess.Engine.now w.engine in
  if (!stale || now < ls.horizon) && ls.reconcile_rounds < 10_000 then
    ignore
      (Dess.Engine.schedule w.engine ~delay:ls.lcfg.reconcile_interval
         (fun _ -> reconcile w ls))

let run ?(config = default_config) ~controller ~workload () =
  let dep = controller.Sdm.Controller.deployment in
  let n_proxies = Array.length dep.Sdm.Deployment.proxies in
  let n_mboxes = Array.length dep.Sdm.Deployment.middleboxes in
  (* Reject a schedule that does not fit this deployment up front,
     instead of letting it silently no-op or blow up mid-run. *)
  (match config.faults with
  | None -> ()
  | Some schedule -> (
    let g = dep.Sdm.Deployment.topo.Netgraph.Topology.graph in
    match
      Fault.Schedule.validate
        ~n_controllers:
          (match config.live with Some l -> l.replicas | None -> 0)
        ~n_proxies ~n_mboxes
        ~link_exists:(fun u v -> Netgraph.Graph.has_edge g u v)
        schedule
    with
    | Ok () -> ()
    | Error e -> invalid_arg ("Pktsim.run: invalid fault schedule: " ^ e)));
  (match config.live with
  | None -> ()
  | Some l ->
    (* NaN-safe: [finite_pos] rejects non-finite intervals outright
       ([<= 0.0] would let a NaN through).  The cap may be [infinity]
       (an uncapped ladder) but never NaN or below the base. *)
    let finite_pos x = Float.is_finite x && x > 0.0 in
    if
      (not (finite_pos l.epoch_interval))
      || (not (finite_pos l.reconcile_interval))
      || (not (finite_pos l.push_backoff))
      || Float.is_nan l.push_backoff_cap
      || l.push_backoff_cap < l.push_backoff
      || l.push_max_retries < 0
      || (match l.sweep_period with
         | Some p -> not (finite_pos p)
         | None -> false)
    then invalid_arg "Pktsim.run: invalid live-control-plane config";
    if l.replicas < 1 then
      invalid_arg "Pktsim.run: replicas must be >= 1";
    (match Quorum.validate l.quorum ~n:l.replicas with
    | Ok () -> ()
    | Error e -> invalid_arg ("Pktsim.run: invalid quorum family: " ^ e));
    match l.replica_routers with
    | None -> ()
    | Some rs ->
      let n_routers =
        Netgraph.Graph.node_count
          dep.Sdm.Deployment.topo.Netgraph.Topology.graph
      in
      if
        List.length rs <> l.replicas
        || List.exists (fun r -> r < 0 || r >= n_routers) rs
        || List.length (List.sort_uniq compare rs) <> l.replicas
      then invalid_arg "Pktsim.run: invalid replica routers");
  if config.shards < 1 then invalid_arg "Pktsim.run: shards must be >= 1";
  let engine = Dess.Engine.create () in
  let n_flows = Array.length workload.Workload.flows in
  (* Capacity hints from the deployment and flow counts instead of a
     blanket 64: the tables reach these sizes on every large run, so
     sizing them up front removes the rehash churn on the hot path.
     A hint never changes behaviour, only when Hashtbl grows. *)
  let mbox_index = Hashtbl.create (max 16 n_mboxes) in
  Array.iter
    (fun (m : Mbox.Middlebox.t) -> Hashtbl.replace mbox_index m.addr m.id)
    dep.Sdm.Deployment.middleboxes;
  let rule_by_id =
    Hashtbl.create (max 16 (List.length controller.Sdm.Controller.rules))
  in
  List.iter
    (fun r -> Hashtbl.replace rule_by_id r.Policy.Rule.id r)
    controller.Sdm.Controller.rules;
  (* Expected live entries per flow table: flows spread across the
     proxies (plus chain fan-in on middleboxes, where each flow visits
     two or three boxes). *)
  let proxy_flow_hint = max 64 (n_flows / max 1 n_proxies) in
  let mbox_flow_hint = max 64 (3 * n_flows / max 1 n_mboxes) in
  let entity_table entity =
    let rules = Sdm.Controller.policy_table_for controller entity in
    match config.classifier with
    | Trie ->
      let t = Policy.Trie.build rules in
      fun flow -> Policy.Trie.first_match t flow
    | Dectree ->
      let t = Policy.Dectree.build rules in
      fun flow -> Policy.Dectree.first_match t flow
    | Linear -> fun flow -> Policy.Rule.first_match rules flow
  in
  (* The shardable setup phases: per-entity policy-trie builds and the
     per-source routing tables are pure functions of the immutable
     controller/topology, so [config.shards > 1] evaluates them on the
     domain pool.  Results are positional ({!Stdx.Domain_pool.map}),
     so the constructed state — and therefore the whole run, whose
     event loop is inherently sequential — is bit-identical for every
     shard count. *)
  let setup_init n f =
    if config.shards = 1 then Array.init n f
    else
      Stdx.Domain_pool.map
        ~jobs:(min config.shards (Stdx.Domain_pool.default_jobs ()))
        f
        (Array.init n Fun.id)
  in
  let fault =
    match config.faults with
    | None -> None
    | Some schedule ->
      let session =
        (* Only pay for a live OSPF session when links actually change
           mid-run; pure middlebox faults leave routing alone. *)
        if Fault.Schedule.has_link_events schedule then
          Some (Ospf.Session.start dep.Sdm.Deployment.topo)
        else None
      in
      (* The corruption RNG is a *derived child* of the loss stream's
         seed: drawing victims never advances the loss RNG, so the
         loss/ack draw sequence — and with it every schedule without
         corruption events — is bit-identical to before. *)
      let corrupt =
        if Fault.Schedule.has_corruption_events schedule then
          Some
            {
              crng =
                Stdx.Rng.derive
                  (Stdx.Rng.create schedule.Fault.Schedule.loss_seed)
                  1;
              next_cid = 0;
              records = Hashtbl.create 64;
              label_sites = Hashtbl.create 64;
              cache_sites = Hashtbl.create 64;
              config_sites = Hashtbl.create 16;
              graveyard = Array.make n_mboxes [];
              want_graveyard =
                List.exists
                  (fun { Fault.Schedule.what; _ } ->
                    match what with
                    | Fault.Schedule.Stale_resurrect _ -> true
                    | _ -> false)
                  schedule.Fault.Schedule.events;
            }
        else None
      in
      Some
        {
          detector =
            Fault.Detector.create ~n:n_mboxes ~delay:config.detection_delay;
          schedule;
          loss_rng = Stdx.Rng.create schedule.Fault.Schedule.loss_seed;
          session;
          corrupt;
        }
  in
  let w =
    {
      cfg = config;
      controller;
      dep;
      engine;
      tables =
        (let topo = dep.Sdm.Deployment.topo in
         match config.table_source with
         | Oracle ->
           (* One Dijkstra per source router — sharded like the trie
              builds.  The distributed substrates converge by global
              message exchange and stay sequential. *)
           let g = topo.Netgraph.Topology.graph in
           setup_init (Netgraph.Graph.node_count g) (fun u ->
               Netgraph.Routing.table_for g u)
         | Distributed_ospf -> (Ospf.Protocol.converge topo).Ospf.Protocol.tables
         | Distributed_dvr -> (Dvr.Protocol.converge topo).Dvr.Protocol.tables);
      ecmp_tables =
        (if config.ecmp then
           Some
             (Netgraph.Routing.build_all_ecmp
                dep.Sdm.Deployment.topo.Netgraph.Topology.graph)
         else None);
      counters =
        {
          injected = 0;
          delivered = 0;
          dropped = 0;
          control = 0;
          lookups = 0;
          cache_hits = 0;
          cache_negative_hits = 0;
          tunneled = 0;
          label_switched = 0;
          fragments = 0;
          hops = 0;
          label_misses = 0;
          teardowns = 0;
          wp_served = 0;
          violations = 0;
          fault_dropped = 0;
          retries = 0;
          ctrl_lost = 0;
          last_violation = 0.0;
          cfg_pushes = 0;
          cfg_acks = 0;
          cfg_lost = 0;
          cfg_bytes = 0;
          reopts = 0;
          cfg_degraded = 0;
          q_rounds = 0;
          q_commits = 0;
          q_aborts = 0;
          q_msgs = 0;
          q_lost = 0;
          elections = 0;
          corrupt_injected = 0;
          corrupt_manifested = 0;
          corrupt_detected = 0;
          corrupt_repaired = 0;
          sweep_rounds = 0;
          sweep_msgs = 0;
          sweep_lost = 0;
          sweep_bytes = 0;
          repair_sum = 0.0;
          repair_max = 0.0;
          reopt_pivots = 0;
          reopt_phase1 = 0;
          reopt_warm = 0;
          reopt_fallback = 0;
        };
      entity_ctrl_retries = Array.make (n_proxies + n_mboxes) 0;
      entity_ctrl_lost = Array.make (n_proxies + n_mboxes) 0;
      latencies = Stdx.Fvec.create ();
      busy_until = Array.make n_mboxes 0.0;
      loads = Array.make n_mboxes 0.0;
      proxy_caches =
        Array.init n_proxies (fun _ ->
            Policy.Flow_cache.create ~timeout:config.cache_timeout
              ?capacity:config.cache_capacity ~expected:proxy_flow_hint ());
      proxy_match = setup_init n_proxies (fun i -> entity_table (Mbox.Entity.Proxy i));
      mutable_label = Array.make n_proxies 0;
      mbox_caches =
        Array.init n_mboxes (fun _ ->
            Policy.Flow_cache.create ~timeout:config.cache_timeout
              ?capacity:config.cache_capacity ~expected:mbox_flow_hint ());
      mbox_match =
        setup_init n_mboxes (fun i -> entity_table (Mbox.Entity.Middlebox i));
      mbox_labels =
        Array.init n_mboxes (fun _ ->
            Mbox.Label_table.create ~timeout:config.label_timeout ());
      proxy_label_index =
        Array.init n_proxies (fun _ ->
            Stdx.Flat_table.create ~initial:proxy_flow_hint ());
      mbox_index;
      rule_by_id;
      fault;
      audit =
        (if config.audit then Some (Audit.Checker.create ~controller ())
         else None);
      live =
        (match config.live with
        | None -> None
        | Some lcfg ->
          let primary =
            match lcfg.controller_router with
            | Some r -> r
            | None -> Controlplane.default_router dep
          in
          Some
            {
              lcfg;
              ctrl_router = primary;
              configs = [| controller |];
              latest = 0;
              device_version = Array.make (n_proxies + n_mboxes) 0;
              device_acked = Array.make (n_proxies + n_mboxes) 0;
              meas = Sdm.Measurement.create ();
              horizon = 0.0;
              reconcile_rounds = 0;
              leader = 0;
              replica_router =
                (match lcfg.replica_routers with
                | Some rs -> Array.of_list rs
                | None ->
                  if lcfg.replicas = 1 then [| primary |]
                  else
                    Array.of_list
                      (Controlplane.replica_routers dep ~primary
                         ~n:lcfg.replicas));
              replica_up = Array.make lcfg.replicas true;
              acceptors =
                Array.init lcfg.replicas (fun _ -> Quorum.Acceptor.create ());
              round = None;
              pending = None;
            });
    }
  in
  (* Schedule the fault events before the traffic so that a fault tied
     with a packet injection applies first (the engine breaks time ties
     in FIFO order). *)
  (match w.fault with
  | None -> ()
  | Some f ->
    List.iter
      (fun { Fault.Schedule.at; what } ->
        ignore
          (Dess.Engine.schedule_at w.engine ~time:at (fun _ ->
               apply_fault w f what));
        (* The live controller reacts to middlebox transitions as soon
           as its detector reports them — one detection delay after
           the ground-truth event. *)
        match (what, w.live) with
        | (Fault.Schedule.Mbox_crash _ | Fault.Schedule.Mbox_recover _), Some ls
          ->
          ignore
            (Dess.Engine.schedule_at w.engine
               ~time:(at +. config.detection_delay) (fun _ ->
                 reoptimize w ls))
        (* A controller crash is detected by the surviving replicas one
           detection delay after the fact; re-election (if the dead
           replica led) happens then. *)
        | Fault.Schedule.Ctrl_crash id, Some ls ->
          ignore
            (Dess.Engine.schedule_at w.engine
               ~time:(at +. config.detection_delay) (fun _ ->
                 handle_ctrl_crash w ls id))
        | _, _ -> ())
      f.schedule.Fault.Schedule.events);
  (* Inject flows: first packet at a jittered start, each subsequent
     packet scheduled by its predecessor (keeps the heap small). *)
  let rng = Stdx.Rng.create config.seed in
  let horizon = ref 0.0 in
  Array.iter
    (fun (fs : Workload.flow_spec) ->
      let start = Stdx.Rng.float rng config.start_window in
      let last =
        start
        +. (float_of_int (Stdlib.max 0 (fs.Workload.packets - 1))
            *. config.packet_interval)
      in
      if last > !horizon then horizon := last;
      let rec packet_at i =
        if i < fs.Workload.packets then
          ignore
            (Dess.Engine.schedule_at w.engine
               ~time:(start +. (float_of_int i *. config.packet_interval))
               (fun _ ->
                 let aid = w.counters.injected in
                 w.counters.injected <- aid + 1;
                 proxy_emit w fs ~aid;
                 packet_at (i + 1)))
      in
      packet_at 0)
    workload.Workload.flows;
  (* Arm the live control plane: epoch re-optimizations across the
     traffic window, and the reconciliation heartbeat. *)
  (match w.live with
  | None -> ()
  | Some ls ->
    ls.horizon <- !horizon;
    let rec epochs k =
      let t = float_of_int k *. ls.lcfg.epoch_interval in
      if t <= ls.horizon then begin
        ignore
          (Dess.Engine.schedule_at w.engine ~time:t (fun _ ->
               (* Nothing measured yet means nothing to re-optimize
                  from; failure reactions have their own trigger. *)
               if Sdm.Measurement.total ls.meas > 0.0 then reoptimize w ls));
        epochs (k + 1)
      end
    in
    epochs 1;
    ignore
      (Dess.Engine.schedule_at w.engine ~time:ls.lcfg.reconcile_interval
         (fun _ -> reconcile w ls));
    (* The anti-entropy sweep: digest-audit every device each period.
       [None] arms nothing — no events, no draws, bit-identical. *)
    match ls.lcfg.sweep_period with
    | None -> ()
    | Some p ->
      ignore
        (Dess.Engine.schedule_at w.engine ~time:p (fun _ ->
             sweep_round w ls ~period:p)));
  Dess.Engine.run engine;
  let audit_report =
    match w.audit with
    | None -> None
    | Some a ->
      Some
        (Audit.Checker.finalize
           ~expect:
             {
               Audit.Checker.injected = w.counters.injected;
               delivered = w.counters.delivered;
               dropped = w.counters.dropped;
               wp_served = w.counters.wp_served;
               fragments = w.counters.fragments;
               loads = w.loads;
             }
           a)
  in
  let latency_mean, latency_p50, latency_p99 =
    let n = Stdx.Fvec.length w.latencies in
    if n = 0 then (0.0, 0.0, 0.0)
    else begin
      (* Sum newest delivery first: float addition is order-sensitive
         in the last ulp, and the regression oracles pin the mean this
         historical cons-list accumulation produced. *)
      let total = ref 0.0 in
      for i = n - 1 downto 0 do
        total := !total +. Stdx.Fvec.get w.latencies i
      done;
      match
        Stdx.Stats.percentiles (Stdx.Fvec.to_array w.latencies) [ 0.5; 0.99 ]
      with
      | [ p50; p99 ] -> (!total /. float_of_int n, p50, p99)
      | _ -> assert false
    end
  in
  {
    loads = w.loads;
    injected_packets = w.counters.injected;
    delivered_packets = w.counters.delivered;
    dropped_packets = w.counters.dropped;
    control_packets = w.counters.control;
    multi_field_lookups = w.counters.lookups;
    cache_hits = w.counters.cache_hits;
    cache_negative_hits = w.counters.cache_negative_hits;
    tunneled_packets = w.counters.tunneled;
    label_switched_packets = w.counters.label_switched;
    fragments_created = w.counters.fragments;
    router_hops = w.counters.hops;
    sim_time = Dess.Engine.now engine;
    latency_mean;
    latency_p50;
    latency_p99;
    label_misses = w.counters.label_misses;
    teardowns = w.counters.teardowns;
    wp_cache_served = w.counters.wp_served;
    cache_evictions =
      (let sum caches =
         Array.fold_left
           (fun acc c -> acc + (Policy.Flow_cache.stats c).Policy.Flow_cache.evictions)
           0 caches
       in
       sum w.proxy_caches + sum w.mbox_caches);
    events_scheduled = Dess.Engine.events_scheduled engine;
    events_processed = Dess.Engine.events_processed engine;
    policy_violations = w.counters.violations;
    fault_dropped = w.counters.fault_dropped;
    control_retries = w.counters.retries;
    control_lost = w.counters.ctrl_lost;
    last_violation_time = w.counters.last_violation;
    config_pushes = w.counters.cfg_pushes;
    config_acks = w.counters.cfg_acks;
    config_lost = w.counters.cfg_lost;
    config_bytes = w.counters.cfg_bytes;
    reoptimizations = w.counters.reopts;
    config_degraded = w.counters.cfg_degraded;
    final_config_version =
      (match w.live with None -> 0 | Some ls -> ls.latest);
    stale_devices =
      (match w.live with
      | None -> 0
      | Some ls ->
        Array.fold_left
          (fun acc v -> if v < ls.latest then acc + 1 else acc)
          0 ls.device_version);
    entity_control_retries = w.entity_ctrl_retries;
    entity_control_lost = w.entity_ctrl_lost;
    entity_config_version =
      (match w.live with
      | None -> Array.make (n_proxies + n_mboxes) 0
      | Some ls -> Array.copy ls.device_version);
    quorum_rounds = w.counters.q_rounds;
    quorum_commits = w.counters.q_commits;
    quorum_aborts = w.counters.q_aborts;
    quorum_msgs = w.counters.q_msgs;
    quorum_lost = w.counters.q_lost;
    leader_changes = w.counters.elections;
    replica_versions =
      (match w.live with
      | None -> [||]
      | Some ls -> Array.map Quorum.Acceptor.committed ls.acceptors);
    corruptions_injected = w.counters.corrupt_injected;
    corruptions_manifested = w.counters.corrupt_manifested;
    corruptions_detected = w.counters.corrupt_detected;
    corruptions_repaired = w.counters.corrupt_repaired;
    sweep_rounds = w.counters.sweep_rounds;
    sweep_msgs = w.counters.sweep_msgs;
    sweep_lost = w.counters.sweep_lost;
    sweep_bytes = w.counters.sweep_bytes;
    repair_window_mean =
      (if w.counters.corrupt_repaired = 0 then 0.0
       else w.counters.repair_sum /. float_of_int w.counters.corrupt_repaired);
    repair_window_max = w.counters.repair_max;
    reopt_pivots = w.counters.reopt_pivots;
    reopt_phase1_pivots = w.counters.reopt_phase1;
    reopt_warm_used = w.counters.reopt_warm;
    reopt_fallback = w.counters.reopt_fallback;
    audit_report;
  }
