(** Count-Min sketch over 64-bit-hashed keys.

    Sub-linear-memory frequency estimation with one-sided error:
    estimates never undercount, and with width [ceil (e / epsilon)]
    and depth [ceil (ln (1 / delta))] the overcount is at most
    [epsilon * total] with probability [1 - delta].  Policy proxies
    use it to measure per-(source, destination, policy) traffic
    volumes without keeping an exact cell per combination. *)

type t

val create : ?epsilon:float -> ?delta:float -> unit -> t
(** Defaults: epsilon 0.001, delta 0.01. *)

val width : t -> int
val depth : t -> int

val add : t -> int64 -> float -> unit
(** [add t key v] — raises [Invalid_argument] unless [v] is finite and
    non-negative (a NaN or infinite increment would poison every cell
    it touches and the running total). *)

val estimate : t -> int64 -> float
(** Never less than the true total added for the key. *)

val total : t -> float
(** Exact sum of everything added. *)
