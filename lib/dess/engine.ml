(* Pooled event cells.  The engine used to heap-allocate a
   closure-carrying record per scheduled event, which made the event
   loop the simulator's steady-state allocation floor.  Events now
   live in parallel arrays ([times] an unboxed float array,
   [seqs]/[ids] int arrays, [actions] the user closures) indexed by
   cell number; a free list threads recycled cells through [seqs],
   and the priority queue is an [int Stdx.Heap.t] over cell indices
   whose comparison reads (time, seq) out of the pool — the same
   (time, seq) ordering the record heap had, so pop order is
   bit-identical.  A schedule-one-fire-one simulation allocates no
   event storage at all in steady state; only the pool's amortized
   doubling and the caller's own action closures touch the heap. *)

type pool = {
  mutable times : float array;
  mutable seqs : int array;
      (* seq number while queued; free-list link while free *)
  mutable ids : int array;
  mutable actions : (t -> unit) array;
  mutable free : int;  (* head of the free list, -1 = empty *)
  mutable cap : int;  (* cells ever handed out = pool high-water mark *)
}

and t = {
  pool : pool;
  queue : int Stdx.Heap.t;
  cancelled : (int, unit) Hashtbl.t;
  clock : float array;
      (* One-element float array, not a mutable float field: moving a
         time from [times] into a boxed record field would allocate a
         fresh box per fired event; a flat-float-array store stays
         unboxed. *)
  mutable next_seq : int;
  mutable next_id : int;
  mutable processed : int;
}

type handle = int

(* Recycled cells must not retain their last action: such a closure
   can capture the whole simulation world. *)
let nop (_ : t) = ()

let create () =
  let pool =
    { times = [||]; seqs = [||]; ids = [||]; actions = [||]; free = -1; cap = 0 }
  in
  let cmp a b =
    match Float.compare pool.times.(a) pool.times.(b) with
    | 0 -> Int.compare pool.seqs.(a) pool.seqs.(b)
    | c -> c
  in
  {
    pool;
    queue = Stdx.Heap.create ~cmp;
    cancelled = Hashtbl.create 64;
    clock = [| 0.0 |];
    next_seq = 0;
    next_id = 0;
    processed = 0;
  }

let now t = t.clock.(0)

let grow_pool p =
  let old = Array.length p.times in
  let ncap = if old = 0 then 64 else old * 2 in
  let times = Array.make ncap 0.0 in
  Array.blit p.times 0 times 0 old;
  let seqs = Array.make ncap 0 in
  Array.blit p.seqs 0 seqs 0 old;
  let ids = Array.make ncap 0 in
  Array.blit p.ids 0 ids 0 old;
  let actions = Array.make ncap nop in
  Array.blit p.actions 0 actions 0 old;
  p.times <- times;
  p.seqs <- seqs;
  p.ids <- ids;
  p.actions <- actions

let alloc_cell p =
  if p.free >= 0 then begin
    let c = p.free in
    p.free <- p.seqs.(c);
    c
  end
  else begin
    if p.cap = Array.length p.times then grow_pool p;
    let c = p.cap in
    p.cap <- c + 1;
    c
  end

let recycle p c =
  p.actions.(c) <- nop;
  p.seqs.(c) <- p.free;
  p.free <- c

(* Inlined into both entry points so [schedule]'s computed fire time
   flows straight into the flat [times] array without being boxed for
   a call boundary. *)
let[@inline] enqueue t time action =
  let id = t.next_id in
  t.next_id <- id + 1;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let p = t.pool in
  let c = alloc_cell p in
  p.times.(c) <- time;
  p.seqs.(c) <- seq;
  p.ids.(c) <- id;
  p.actions.(c) <- action;
  Stdx.Heap.push t.queue c;
  id

let schedule_at t ~time action =
  if time < t.clock.(0) then
    invalid_arg "Engine.schedule_at: time in the past";
  enqueue t time action

(* No past check needed: [delay >= 0] (NaN included) implies
   [clock +. delay < clock] is false, exactly the predicate
   [schedule_at] tests. *)
let schedule t ~delay action =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  enqueue t (t.clock.(0) +. delay) action

let cancel t handle = Hashtbl.replace t.cancelled handle ()

let pending t = Stdx.Heap.length t.queue

(* Pop until a live cell surfaces; cancelled entries are discarded
   (and their cells recycled) lazily here.  -1 = queue empty. *)
let rec next_live t =
  if Stdx.Heap.is_empty t.queue then -1
  else begin
    let c = Stdx.Heap.take t.queue in
    let p = t.pool in
    if Hashtbl.mem t.cancelled p.ids.(c) then begin
      Hashtbl.remove t.cancelled p.ids.(c);
      recycle p c;
      next_live t
    end
    else c
  end

(* Fire the event in cell [c].  The cell is recycled *before* the
   action runs, so the action's own scheduling can reuse it — that is
   what closes the loop into zero steady-state cell allocation. *)
let fire t c =
  let p = t.pool in
  t.clock.(0) <- p.times.(c);
  let action = p.actions.(c) in
  recycle p c;
  t.processed <- t.processed + 1;
  action t

let step t =
  let c = next_live t in
  if c < 0 then false
  else begin
    fire t c;
    true
  end

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some horizon ->
    let continue = ref true in
    while !continue do
      let c = next_live t in
      if c < 0 then continue := false
      else if t.pool.times.(c) > horizon then begin
        (* Too far in the future: push the cell back untouched. *)
        Stdx.Heap.push t.queue c;
        continue := false
      end
      else fire t c
    done

let events_processed t = t.processed

(* Every schedule consumes one sequence number, so [next_seq] is the
   lifetime schedule count. *)
let events_scheduled t = t.next_seq
