lib/stdx/power_law.mli: Rng
