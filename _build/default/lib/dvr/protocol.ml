type stats = { messages : int; convergence_time : float }

type result = {
  tables : Netgraph.Routing.table array;
  distances : float array array;
  stats : stats;
}

let converge ?(link_delay = 1.0) ?(hold_down = 0.5) ?(jitter_seed = 7) topo =
  let g = topo.Netgraph.Topology.graph in
  let n = Netgraph.Graph.node_count g in
  let rng = Stdx.Rng.create jitter_seed in
  let routers =
    Array.init n (fun i ->
        let neighbors =
          List.map
            (fun { Netgraph.Graph.dst; cost } -> (dst, cost))
            (Netgraph.Graph.neighbors g i)
        in
        Router.create ~id:i ~neighbors)
  in
  let engine = Dess.Engine.create () in
  let messages = ref 0 in
  let send_pending = Array.make n false in
  (* Batched triggered update: one advertisement per neighbour, at most
     one batch in flight per router. *)
  let rec schedule_send i =
    if not send_pending.(i) then begin
      send_pending.(i) <- true;
      ignore
        (Dess.Engine.schedule engine ~delay:hold_down (fun _ ->
             send_pending.(i) <- false;
             List.iter
               (fun { Netgraph.Graph.dst; _ } ->
                 let adv = Router.advertisement_for routers.(i) ~neighbor:dst in
                 incr messages;
                 ignore
                   (Dess.Engine.schedule engine ~delay:link_delay (fun _ ->
                        if Router.receive routers.(dst) adv then
                          schedule_send dst)))
               (Netgraph.Graph.neighbors g i)))
    end
  in
  for i = 0 to n - 1 do
    let jitter = Stdx.Rng.float rng 0.5 in
    ignore (Dess.Engine.schedule engine ~delay:jitter (fun _ -> schedule_send i))
  done;
  Dess.Engine.run engine;
  {
    tables = Array.map (fun r -> Router.table r ~node_count:n) routers;
    distances = Array.map (fun r -> Router.distances r ~node_count:n) routers;
    stats = { messages = !messages; convergence_time = Dess.Engine.now engine };
  }
