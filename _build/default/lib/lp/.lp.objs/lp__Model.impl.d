lib/lp/model.ml: Array Format Hashtbl List Option Simplex
