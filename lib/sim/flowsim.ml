type result = {
  loads : float array;
  packet_hops : float;
  direct_packet_hops : float;
  enforced_flows : int;
  enforced_packets : int;
  policy_violations : int;
  violating_flows : int;
  events : int;
}

(* Per-shard accumulator.  Every float accumulated here is an exact
   integer (link costs are integer-valued, so Dijkstra distances are;
   packet counts are bounded integers; the products and run-level sums
   stay far below 2^53), so addition is associative and a fixed
   shard-index merge of per-shard partial sums is bit-identical to the
   sequential accumulation whatever the partition. *)
type acc = {
  a_loads : float array;
  mutable a_packet_hops : float;
  mutable a_direct_packet_hops : float;
  mutable a_enforced_flows : int;
  mutable a_enforced_packets : int;
  mutable a_policy_violations : int;
  mutable a_violating_flows : int;
  mutable a_events : int;
}

let fresh_acc n_mboxes =
  {
    a_loads = Array.make n_mboxes 0.0;
    a_packet_hops = 0.0;
    a_direct_packet_hops = 0.0;
    a_enforced_flows = 0;
    a_enforced_packets = 0;
    a_policy_violations = 0;
    a_violating_flows = 0;
    a_events = 0;
  }

let merge_into dst src =
  Array.iteri
    (fun i v -> dst.a_loads.(i) <- dst.a_loads.(i) +. v)
    src.a_loads;
  dst.a_packet_hops <- dst.a_packet_hops +. src.a_packet_hops;
  dst.a_direct_packet_hops <- dst.a_direct_packet_hops +. src.a_direct_packet_hops;
  dst.a_enforced_flows <- dst.a_enforced_flows + src.a_enforced_flows;
  dst.a_enforced_packets <- dst.a_enforced_packets + src.a_enforced_packets;
  dst.a_policy_violations <- dst.a_policy_violations + src.a_policy_violations;
  dst.a_violating_flows <- dst.a_violating_flows + src.a_violating_flows;
  dst.a_events <- dst.a_events + src.a_events

let result_of acc =
  {
    loads = acc.a_loads;
    packet_hops = acc.a_packet_hops;
    direct_packet_hops = acc.a_direct_packet_hops;
    enforced_flows = acc.a_enforced_flows;
    enforced_packets = acc.a_enforced_packets;
    policy_violations = acc.a_policy_violations;
    violating_flows = acc.a_violating_flows;
    events = acc.a_events;
  }

(* The chain walk, top-level so each hop closes over nothing: the
   previous [List.iter] callback plus its entity/here/violated refs
   cost ~18 minor words per enforced flow on the fast path.  Returns
   the router the flow ends up at.  A missing candidate stops the walk
   — exactly what the [violated] flag did; the skipped tail counted no
   events then either. *)
let rec walk_chain alive controller ~rule acc dist (fs : Workload.flow_spec)
    pkts entity here = function
  | [] -> here
  | nf :: rest -> (
    acc.a_events <- acc.a_events + 1;
    match
      Sdm.Controller.next_hop_result ?alive controller entity ~rule ~nf
        fs.Workload.flow
    with
    | Error `No_live_candidate ->
      (* Graceful degradation: the rest of the chain cannot be
         enforced, so the flow hot-potatoes straight to its
         destination and every packet counts as a violation. *)
      acc.a_violating_flows <- acc.a_violating_flows + 1;
      acc.a_policy_violations <- acc.a_policy_violations + fs.Workload.packets;
      here
    | Ok mb ->
      acc.a_loads.(mb.Mbox.Middlebox.id) <-
        acc.a_loads.(mb.Mbox.Middlebox.id) +. pkts;
      acc.a_packet_hops <-
        acc.a_packet_hops +. (dist.(here).(mb.Mbox.Middlebox.router) *. pkts);
      walk_chain alive controller ~rule acc dist fs pkts
        (Mbox.Entity.Middlebox mb.Mbox.Middlebox.id)
        mb.Mbox.Middlebox.router rest)

let process_flow ?alive ~controller ~rule_of acc (fs : Workload.flow_spec) =
  let dep = controller.Sdm.Controller.deployment in
  let dist = dep.Sdm.Deployment.dist in
  let router_of_proxy i = dep.Sdm.Deployment.proxies.(i).Mbox.Proxy.router in
  (* One event per flow record (classification), one per steering
     decision below. *)
  acc.a_events <- acc.a_events + 1;
  let pkts = float_of_int fs.Workload.packets in
  let src_router = router_of_proxy fs.Workload.src_proxy in
  let dst_router = router_of_proxy fs.Workload.dst_proxy in
  acc.a_direct_packet_hops <-
    acc.a_direct_packet_hops +. (dist.(src_router).(dst_router) *. pkts);
  match rule_of fs with
  | None ->
    acc.a_packet_hops <-
      acc.a_packet_hops +. (dist.(src_router).(dst_router) *. pkts)
  | Some rule when Policy.Action.is_permit rule.Policy.Rule.actions ->
    acc.a_packet_hops <-
      acc.a_packet_hops +. (dist.(src_router).(dst_router) *. pkts)
  | Some rule ->
    acc.a_enforced_flows <- acc.a_enforced_flows + 1;
    acc.a_enforced_packets <- acc.a_enforced_packets + fs.Workload.packets;
    let final_router =
      walk_chain alive controller ~rule acc dist fs pkts
        (Mbox.Entity.Proxy fs.Workload.src_proxy)
        src_router rule.Policy.Rule.actions
    in
    acc.a_packet_hops <-
      acc.a_packet_hops +. (dist.(final_router).(dst_router) *. pkts)

(* The sharded driver.  [shards = 1] walks every flow in id order on
   the calling domain — exactly the historical sequential path, pinned
   by the hex-float oracles.  [shards > 1] partitions flow ids with
   the seeded hash ({!Stdx.Shard.owner}: a function of (shard_seed,
   flow id) alone), hands each shard exclusive ownership of its flows'
   accumulator, evaluates shards on the domain pool, and merges the
   partials in fixed shard-index order after the join.  The controller
   and deployment are only read; nothing the shards touch is shared
   mutable state. *)
let run_over ?alive ?(shards = 1) ?(shard_seed = 0) ~controller ~rule_of ~n
    ~get () =
  if shards < 1 then invalid_arg "Flowsim.run: shards must be >= 1";
  let dep = controller.Sdm.Controller.deployment in
  let n_mboxes = Array.length dep.Sdm.Deployment.middleboxes in
  if shards = 1 then begin
    let acc = fresh_acc n_mboxes in
    for i = 0 to n - 1 do
      process_flow ?alive ~controller ~rule_of acc (get i)
    done;
    result_of acc
  end
  else begin
    let shard_indices = Stdx.Shard.indices ~seed:shard_seed ~shards ~n in
    let partials =
      Stdx.Domain_pool.map
        ~jobs:(min shards (Stdx.Domain_pool.default_jobs ()))
        (fun owned ->
          let acc = fresh_acc n_mboxes in
          Array.iter
            (fun i -> process_flow ?alive ~controller ~rule_of acc (get i))
            owned;
          acc)
        shard_indices
    in
    let total = fresh_acc n_mboxes in
    Array.iter (fun p -> merge_into total p) partials;
    result_of total
  end

let run ?alive ?shards ?shard_seed ~controller ~workload () =
  run_over ?alive ?shards ?shard_seed ~controller
    ~rule_of:(Workload.rule_of workload)
    ~n:(Array.length workload.Workload.flows)
    ~get:(fun i -> workload.Workload.flows.(i))
    ()

let run_packed ?alive ?shards ?shard_seed ~controller ~workload () =
  run_over ?alive ?shards ?shard_seed ~controller
    ~rule_of:(Workload.Packed.rule_of workload)
    ~n:workload.Workload.Packed.n_flows
    ~get:(Workload.Packed.get workload) ()

let loads_of_nf controller result nf =
  let dep = controller.Sdm.Controller.deployment in
  Sdm.Deployment.middleboxes_of dep nf
  |> List.map (fun (m : Mbox.Middlebox.t) -> result.loads.(m.id))
  |> Array.of_list

let max_load_of_nf controller result nf =
  Array.fold_left max 0.0 (loads_of_nf controller result nf)

let stretch result =
  if result.direct_packet_hops = 0.0 then 1.0
  else result.packet_hops /. result.direct_packet_hops

let trace ~controller flow =
  let dep = controller.Sdm.Controller.deployment in
  let proxy =
    match Sdm.Deployment.proxy_of_addr dep flow.Netpkt.Flow.src with
    | Some p -> p
    | None -> invalid_arg "Flowsim.trace: source address is in no proxy subnet"
  in
  match Policy.Rule.first_match controller.Sdm.Controller.rules flow with
  | None -> (None, [])
  | Some rule ->
    let entity = ref (Mbox.Entity.Proxy proxy.Mbox.Proxy.id) in
    let chain =
      List.map
        (fun nf ->
          let mb = Sdm.Controller.next_hop controller !entity ~rule ~nf flow in
          entity := Mbox.Entity.Middlebox mb.Mbox.Middlebox.id;
          mb)
        rule.Policy.Rule.actions
    in
    (Some rule, chain)

(* The Pktsim <-> Flowsim differential oracle: both compute per-mbox
   packet loads by entirely different mechanisms, and on a fault-free
   static configuration per-flow steering is deterministic, so they
   must agree exactly. *)
let differential ?abs_tol ?rel_tol t (stats : Pktsim.stats) =
  Audit.Differential.compare ?abs_tol ?rel_tol ~expected:t.loads
    ~observed:stats.Pktsim.loads ()
