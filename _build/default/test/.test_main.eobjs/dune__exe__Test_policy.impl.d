test/test_policy.ml: Alcotest Array Gen List Netpkt Option Policy Printf QCheck QCheck_alcotest Stdx String
