type port_match = Any_port | Port of int | Port_range of int * int

type proto_match = Any_proto | Proto of int

type t = {
  src : Netpkt.Addr.Prefix.t;
  dst : Netpkt.Addr.Prefix.t;
  sport : port_match;
  dport : port_match;
  proto : proto_match;
}

let make ?(src = Netpkt.Addr.Prefix.any) ?(dst = Netpkt.Addr.Prefix.any)
    ?(sport = Any_port) ?(dport = Any_port) ?(proto = Any_proto) () =
  (match sport with
  | Port p when p < 0 || p > 65535 -> invalid_arg "Descriptor.make: bad sport"
  | Port_range (a, b) when a > b || a < 0 || b > 65535 ->
    invalid_arg "Descriptor.make: bad sport range"
  | _ -> ());
  (match dport with
  | Port p when p < 0 || p > 65535 -> invalid_arg "Descriptor.make: bad dport"
  | Port_range (a, b) when a > b || a < 0 || b > 65535 ->
    invalid_arg "Descriptor.make: bad dport range"
  | _ -> ());
  { src; dst; sport; dport; proto }

let any = make ()

let port_matches pm p =
  match pm with
  | Any_port -> true
  | Port q -> p = q
  | Port_range (a, b) -> a <= p && p <= b

let proto_matches pm p = match pm with Any_proto -> true | Proto q -> p = q

let matches t flow =
  Netpkt.Addr.Prefix.contains t.src flow.Netpkt.Flow.src
  && Netpkt.Addr.Prefix.contains t.dst flow.Netpkt.Flow.dst
  && port_matches t.sport flow.Netpkt.Flow.sport
  && port_matches t.dport flow.Netpkt.Flow.dport
  && proto_matches t.proto flow.Netpkt.Flow.proto

let src_overlaps t subnet = Netpkt.Addr.Prefix.overlaps t.src subnet
let dst_overlaps t subnet = Netpkt.Addr.Prefix.overlaps t.dst subnet

let port_to_string = function
  | Any_port -> "*"
  | Port p -> string_of_int p
  | Port_range (a, b) -> Printf.sprintf "%d-%d" a b

let to_string t =
  let prefix p =
    if Netpkt.Addr.Prefix.is_any p then "*" else Netpkt.Addr.Prefix.to_string p
  in
  Printf.sprintf "src=%s dst=%s sport=%s dport=%s proto=%s" (prefix t.src)
    (prefix t.dst) (port_to_string t.sport) (port_to_string t.dport)
    (match t.proto with Any_proto -> "*" | Proto p -> string_of_int p)

let pp ppf t = Format.pp_print_string ppf (to_string t)
