(* Tests for actions, descriptors, rules, the trie matcher and the flow
   cache. *)

let p = Netpkt.Addr.Prefix.of_string

let flow ?(proto = 6) ?(sport = 1000) ?(dport = 80) src dst =
  Netpkt.Flow.make ~src:(Netpkt.Addr.of_string src)
    ~dst:(Netpkt.Addr.of_string dst) ~proto ~sport ~dport

(* --- Action lists -------------------------------------------------- *)

let test_action_structure () =
  let a = Policy.Action.[ FW; IDS; WP ] in
  Alcotest.(check (list (pair string string))) "adjacent pairs"
    [ ("FW", "IDS"); ("IDS", "WP") ]
    (List.map
       (fun (x, y) -> Policy.Action.(nf_to_string x, nf_to_string y))
       (Policy.Action.adjacent_pairs a));
  Alcotest.(check (option string)) "first" (Some "FW")
    (Option.map Policy.Action.nf_to_string (Policy.Action.first a));
  Alcotest.(check (option string)) "last" (Some "WP")
    (Option.map Policy.Action.nf_to_string (Policy.Action.last a));
  Alcotest.(check (option string)) "next after FW" (Some "IDS")
    (Option.map Policy.Action.nf_to_string
       (Policy.Action.next_after a Policy.Action.FW));
  Alcotest.(check (option string)) "next after WP" None
    (Option.map Policy.Action.nf_to_string
       (Policy.Action.next_after a Policy.Action.WP));
  Alcotest.(check bool) "permit" true (Policy.Action.is_permit Policy.Action.permit);
  Alcotest.(check bool) "no duplicates" false (Policy.Action.has_duplicates a);
  Alcotest.(check bool) "duplicates detected" true
    (Policy.Action.has_duplicates Policy.Action.[ FW; IDS; FW ])

let test_action_strings () =
  Alcotest.(check string) "chain" "FW -> IDS"
    (Policy.Action.to_string Policy.Action.[ FW; IDS ]);
  Alcotest.(check string) "permit" "permit" (Policy.Action.to_string []);
  List.iter
    (fun nf ->
      Alcotest.(check bool) "roundtrip" true
        (Policy.Action.equal_nf nf
           (Policy.Action.nf_of_string (Policy.Action.nf_to_string nf))))
    Policy.Action.builtin

(* --- Descriptors ---------------------------------------------------- *)

let test_descriptor_matching () =
  let d =
    Policy.Descriptor.make ~src:(p "10.0.0.0/24")
      ~dport:(Policy.Descriptor.Port 80) ()
  in
  Alcotest.(check bool) "match" true
    (Policy.Descriptor.matches d (flow "10.0.0.5" "99.0.0.1"));
  Alcotest.(check bool) "wrong source" false
    (Policy.Descriptor.matches d (flow "10.1.0.5" "99.0.0.1"));
  Alcotest.(check bool) "wrong port" false
    (Policy.Descriptor.matches d (flow ~dport:443 "10.0.0.5" "99.0.0.1"))

let test_descriptor_port_range () =
  let d =
    Policy.Descriptor.make ~dport:(Policy.Descriptor.Port_range (8000, 8100)) ()
  in
  Alcotest.(check bool) "inside range" true
    (Policy.Descriptor.matches d (flow ~dport:8050 "1.1.1.1" "2.2.2.2"));
  Alcotest.(check bool) "boundary" true
    (Policy.Descriptor.matches d (flow ~dport:8100 "1.1.1.1" "2.2.2.2"));
  Alcotest.(check bool) "outside" false
    (Policy.Descriptor.matches d (flow ~dport:8101 "1.1.1.1" "2.2.2.2"))

let test_descriptor_proto () =
  let d = Policy.Descriptor.make ~proto:(Policy.Descriptor.Proto 17) () in
  Alcotest.(check bool) "udp" true
    (Policy.Descriptor.matches d (flow ~proto:17 "1.1.1.1" "2.2.2.2"));
  Alcotest.(check bool) "tcp" false
    (Policy.Descriptor.matches d (flow ~proto:6 "1.1.1.1" "2.2.2.2"))

let test_descriptor_overlap () =
  let d = Policy.Descriptor.make ~src:(p "10.0.0.0/16") () in
  Alcotest.(check bool) "overlapping subnet" true
    (Policy.Descriptor.src_overlaps d (p "10.0.1.0/24"));
  Alcotest.(check bool) "disjoint subnet" false
    (Policy.Descriptor.src_overlaps d (p "10.1.0.0/24"));
  Alcotest.(check bool) "wildcard overlaps everything" true
    (Policy.Descriptor.src_overlaps (Policy.Descriptor.make ()) (p "10.1.0.0/24"))

(* --- Rules ----------------------------------------------------------- *)

let table_one_rules = Policy.Rule.table_one (p "128.40.0.0/16")

let test_table_one_first_match () =
  (* Internal web traffic hits rule 0 (permit), not rule 2. *)
  let internal = flow "128.40.1.1" "128.40.2.2" in
  (match Policy.Rule.first_match table_one_rules internal with
  | Some r ->
    Alcotest.(check int) "internal -> rule 0" 0 r.Policy.Rule.id;
    Alcotest.(check bool) "permit" true (Policy.Action.is_permit r.Policy.Rule.actions)
  | None -> Alcotest.fail "internal traffic should match");
  (* External client to internal server: rule 2 (FW, IDS). *)
  match Policy.Rule.first_match table_one_rules (flow "99.0.0.1" "128.40.2.2") with
  | Some r -> Alcotest.(check int) "external -> rule 2" 2 r.Policy.Rule.id
  | None -> Alcotest.fail "external traffic should match"

let test_table_one_outbound () =
  (* Internal host to external web server: rule 4 (FW, IDS, proxy). *)
  match Policy.Rule.first_match table_one_rules (flow "128.40.1.1" "99.0.0.1") with
  | Some r ->
    Alcotest.(check int) "outbound -> rule 4" 4 r.Policy.Rule.id;
    Alcotest.(check string) "chain" "FW -> IDS -> WP"
      (Policy.Action.to_string r.Policy.Rule.actions)
  | None -> Alcotest.fail "outbound web should match"

let test_no_match () =
  Alcotest.(check bool) "ssh unmatched" true
    (Policy.Rule.first_match table_one_rules
       (flow ~dport:22 ~sport:1024 "99.0.0.1" "99.0.0.2")
    = None)

let test_relevance () =
  let subnet = p "128.40.0.0/16" in
  let for_proxy = Policy.Rule.relevant_to_subnet table_one_rules subnet in
  (* Rules with wildcard source or source inside the subnet. *)
  Alcotest.(check (list int)) "proxy P_x" [ 0; 1; 2; 3; 4; 5 ]
    (List.map (fun r -> r.Policy.Rule.id) for_proxy);
  let outside = Policy.Rule.relevant_to_subnet table_one_rules (p "1.2.3.0/24") in
  Alcotest.(check (list int)) "outside proxy sees wildcard-src rules" [ 2; 5 ]
    (List.map (fun r -> r.Policy.Rule.id) outside);
  let for_fw = Policy.Rule.relevant_to_function table_one_rules Policy.Action.FW in
  Alcotest.(check (list int)) "FW P_x" [ 2; 3; 4; 5 ]
    (List.map (fun r -> r.Policy.Rule.id) for_fw)

(* --- Trie matcher ----------------------------------------------------- *)

let test_trie_matches_table_one () =
  let trie = Policy.Trie.build table_one_rules in
  Alcotest.(check int) "rule count" 6 (Policy.Trie.rule_count trie);
  List.iter
    (fun f ->
      let expected =
        Option.map (fun r -> r.Policy.Rule.id)
          (Policy.Rule.first_match table_one_rules f)
      in
      let got =
        Option.map (fun r -> r.Policy.Rule.id) (Policy.Trie.first_match trie f)
      in
      Alcotest.(check (option int)) (Netpkt.Flow.to_string f) expected got)
    [
      flow "128.40.1.1" "128.40.2.2";
      flow "99.0.0.1" "128.40.2.2";
      flow "128.40.1.1" "99.0.0.1";
      flow ~sport:80 ~dport:999 "99.0.0.1" "128.40.2.2";
      flow ~dport:22 "99.0.0.1" "99.0.0.2";
    ]

let random_rules rng n =
  let random_prefix () =
    if Stdx.Rng.int rng 4 = 0 then Netpkt.Addr.Prefix.any
    else begin
      let len = 8 * (1 + Stdx.Rng.int rng 3) in
      let addr =
        Netpkt.Addr.of_octets (Stdx.Rng.int rng 4) (Stdx.Rng.int rng 4)
          (Stdx.Rng.int rng 4) 0
      in
      Netpkt.Addr.Prefix.make addr len
    end
  in
  let random_port () =
    match Stdx.Rng.int rng 3 with
    | 0 -> Policy.Descriptor.Any_port
    | 1 -> Policy.Descriptor.Port (Stdx.Rng.int rng 4)
    | _ ->
      let a = Stdx.Rng.int rng 4 in
      Policy.Descriptor.Port_range (a, a + Stdx.Rng.int rng 3)
  in
  List.init n (fun id ->
      Policy.Rule.make ~id
        ~descriptor:
          (Policy.Descriptor.make ~src:(random_prefix ()) ~dst:(random_prefix ())
             ~sport:(random_port ()) ~dport:(random_port ()) ())
        ~actions:(if Stdx.Rng.int rng 3 = 0 then [] else Policy.Action.[ FW ]))

let random_flow rng =
  let addr () =
    Netpkt.Addr.of_octets (Stdx.Rng.int rng 4) (Stdx.Rng.int rng 4)
      (Stdx.Rng.int rng 4) (Stdx.Rng.int rng 4)
  in
  Netpkt.Flow.make ~src:(addr ()) ~dst:(addr ()) ~proto:6
    ~sport:(Stdx.Rng.int rng 5) ~dport:(Stdx.Rng.int rng 5)

let qcheck_trie_equals_linear =
  QCheck.Test.make ~count:100
    ~name:"trie first-match = linear first-match on random rule sets"
    QCheck.(make Gen.(int_range 0 1000000))
    (fun seed ->
      let rng = Stdx.Rng.create seed in
      let rules = random_rules rng (1 + Stdx.Rng.int rng 40) in
      let trie = Policy.Trie.build rules in
      let ok = ref true in
      for _ = 1 to 200 do
        let f = random_flow rng in
        let a =
          Option.map (fun r -> r.Policy.Rule.id) (Policy.Rule.first_match rules f)
        in
        let b =
          Option.map (fun r -> r.Policy.Rule.id) (Policy.Trie.first_match trie f)
        in
        if a <> b then ok := false
      done;
      !ok)

(* --- Decision-tree classifier ------------------------------------------ *)

let test_dectree_matches_table_one () =
  let tree = Policy.Dectree.build table_one_rules in
  Alcotest.(check int) "rule count" 6 (Policy.Dectree.rule_count tree);
  List.iter
    (fun f ->
      let expected =
        Option.map (fun r -> r.Policy.Rule.id)
          (Policy.Rule.first_match table_one_rules f)
      in
      let got =
        Option.map (fun r -> r.Policy.Rule.id) (Policy.Dectree.first_match tree f)
      in
      Alcotest.(check (option int)) (Netpkt.Flow.to_string f) expected got)
    [
      flow "128.40.1.1" "128.40.2.2";
      flow "99.0.0.1" "128.40.2.2";
      flow "128.40.1.1" "99.0.0.1";
      flow ~sport:80 ~dport:999 "99.0.0.1" "128.40.2.2";
      flow ~dport:22 "99.0.0.1" "99.0.0.2";
    ]

let qcheck_dectree_equals_linear =
  QCheck.Test.make ~count:100
    ~name:"decision tree first-match = linear first-match"
    QCheck.(make Gen.(int_range 0 1000000))
    (fun seed ->
      let rng = Stdx.Rng.create seed in
      let rules = random_rules rng (1 + Stdx.Rng.int rng 40) in
      let tree = Policy.Dectree.build rules in
      let ok = ref true in
      for _ = 1 to 200 do
        let f = random_flow rng in
        let a =
          Option.map (fun r -> r.Policy.Rule.id) (Policy.Rule.first_match rules f)
        in
        let b =
          Option.map (fun r -> r.Policy.Rule.id) (Policy.Dectree.first_match tree f)
        in
        if a <> b then ok := false
      done;
      !ok)

let test_dectree_structure_sane () =
  let dep_rules = random_rules (Stdx.Rng.create 7) 60 in
  let tree = Policy.Dectree.build ~binth:4 dep_rules in
  Alcotest.(check bool) "depth bounded" true (Policy.Dectree.depth tree <= 25);
  Alcotest.(check bool) "nodes positive" true (Policy.Dectree.node_count tree >= 1)

let test_dectree_empty () =
  let tree = Policy.Dectree.build [] in
  Alcotest.(check bool) "no match in empty tree" true
    (Policy.Dectree.first_match tree (flow "1.1.1.1" "2.2.2.2") = None)

let test_trie_empty () =
  let trie = Policy.Trie.build [] in
  Alcotest.(check bool) "no match in empty trie" true
    (Policy.Trie.first_match trie (flow "1.1.1.1" "2.2.2.2") = None)

(* --- Policy DSL --------------------------------------------------------- *)

let test_dsl_parse_basic () =
  match Policy.Dsl.parse_line "from 10.0.0.0/24 to any dport 80 proto tcp => FW, IDS" with
  | Error e -> Alcotest.fail e
  | Ok (d, actions) ->
    Alcotest.(check string) "actions" "FW -> IDS" (Policy.Action.to_string actions);
    Alcotest.(check bool) "matches web flow" true
      (Policy.Descriptor.matches d (flow "10.0.0.9" "99.0.0.1"));
    Alcotest.(check bool) "rejects udp" false
      (Policy.Descriptor.matches d (flow ~proto:17 "10.0.0.9" "99.0.0.1"))

let test_dsl_parse_permit_and_ranges () =
  (match Policy.Dsl.parse_line "from any to any sport 1000-2000 => permit" with
  | Ok (d, actions) ->
    Alcotest.(check bool) "permit" true (Policy.Action.is_permit actions);
    Alcotest.(check bool) "range matches" true
      (Policy.Descriptor.matches d (flow ~sport:1500 ~dport:9 "1.1.1.1" "2.2.2.2"));
    Alcotest.(check bool) "range rejects" false
      (Policy.Descriptor.matches d (flow ~sport:2001 ~dport:9 "1.1.1.1" "2.2.2.2"))
  | Error e -> Alcotest.fail e);
  match Policy.Dsl.parse_line "from any to any proto 47 => TM" with
  | Ok (d, _) ->
    Alcotest.(check bool) "numeric proto" true
      (Policy.Descriptor.matches d (flow ~proto:47 "1.1.1.1" "2.2.2.2"))
  | Error e -> Alcotest.fail e

let test_dsl_parse_errors () =
  List.iter
    (fun line ->
      match Policy.Dsl.parse_line line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" line)
    [
      "";
      "to any from any => FW";
      "from any to any =>";
      "from any to any => ";
      "from 300.1.1.1 to any => FW";
      "from any to any sport 99999 => FW";
      "from any to any sport 5 sport 6 => FW";
      "from any to any proto zebra => FW";
      "from any to any banana => FW";
    ]

let test_dsl_document () =
  let text =
    "# header comment\n\n" ^ "from any to 10.1.0.0/24 dport 80 => FW, IDS\n"
    ^ "from 10.1.0.0/24 to any sport 80 => permit # trailing comment\n"
  in
  match Policy.Dsl.parse text with
  | Error e -> Alcotest.fail e
  | Ok rules ->
    Alcotest.(check int) "two rules" 2 (List.length rules);
    Alcotest.(check (list int)) "ids in order" [ 0; 1 ]
      (List.map (fun r -> r.Policy.Rule.id) rules)

let test_dsl_document_error_position () =
  match Policy.Dsl.parse "from any to any => FW\n\nfrom oops\n" with
  | Error e ->
    Alcotest.(check bool) "names line 3" true
      (String.length e >= 7 && String.sub e 0 7 = "line 3:")
  | Ok _ -> Alcotest.fail "expected parse error"

let test_dsl_table_one_roundtrip () =
  match Policy.Dsl.parse Policy.Dsl.table_one_text with
  | Error e -> Alcotest.fail e
  | Ok rules ->
    let reference = table_one_rules in
    Alcotest.(check int) "six rules" (List.length reference) (List.length rules);
    List.iter2
      (fun a b ->
        Alcotest.(check string) "same descriptor"
          (Policy.Descriptor.to_string a.Policy.Rule.descriptor)
          (Policy.Descriptor.to_string b.Policy.Rule.descriptor);
        Alcotest.(check string) "same actions"
          (Policy.Action.to_string a.Policy.Rule.actions)
          (Policy.Action.to_string b.Policy.Rule.actions))
      reference rules

let qcheck_dsl_never_crashes =
  (* The parser must total-function arbitrary input: junk yields
     [Error], never an exception. *)
  QCheck.Test.make ~count:500 ~name:"DSL parser never raises"
    QCheck.(string_gen Gen.printable)
    (fun text ->
      match Policy.Dsl.parse text with Ok _ | Error _ -> true)

let qcheck_dsl_roundtrip =
  QCheck.Test.make ~count:200 ~name:"DSL print |> parse = identity"
    QCheck.(make Gen.(int_range 0 1000000))
    (fun seed ->
      let rng = Stdx.Rng.create seed in
      let rules = random_rules rng (1 + Stdx.Rng.int rng 20) in
      match Policy.Dsl.parse (Policy.Dsl.print rules) with
      | Error _ -> false
      | Ok parsed ->
        List.length parsed = List.length rules
        && List.for_all2
             (fun (a : Policy.Rule.t) (b : Policy.Rule.t) ->
               a.Policy.Rule.descriptor = b.Policy.Rule.descriptor
               && a.Policy.Rule.actions = b.Policy.Rule.actions)
             rules parsed)

(* --- Flow cache ------------------------------------------------------- *)

let test_cache_insert_lookup () =
  let c = Policy.Flow_cache.create () in
  let f = flow "10.0.0.1" "10.1.0.1" in
  Alcotest.(check bool) "initial miss" true
    (Policy.Flow_cache.lookup c ~now:0.0 f = None);
  let _ =
    Policy.Flow_cache.insert c ~now:0.0 f ~rule_id:3
      ~actions:Policy.Action.[ FW; IDS ]
      ~label:9 ()
  in
  (match Policy.Flow_cache.lookup c ~now:1.0 f with
  | Some e ->
    Alcotest.(check int) "rule id" 3 e.Policy.Flow_cache.rule_id;
    Alcotest.(check (option int)) "label" (Some 9) e.Policy.Flow_cache.label;
    Alcotest.(check bool) "not ls yet" false e.Policy.Flow_cache.ls_ready
  | None -> Alcotest.fail "expected hit");
  let s = Policy.Flow_cache.stats c in
  Alcotest.(check int) "one hit" 1 s.Policy.Flow_cache.hits;
  Alcotest.(check int) "one miss" 1 s.Policy.Flow_cache.misses

let test_cache_negative () =
  let c = Policy.Flow_cache.create () in
  let f = flow "10.0.0.1" "10.1.0.1" in
  let _ = Policy.Flow_cache.insert_negative c ~now:0.0 f in
  (match Policy.Flow_cache.lookup c ~now:1.0 f with
  | Some { Policy.Flow_cache.actions = None; _ } -> ()
  | _ -> Alcotest.fail "expected negative entry");
  Alcotest.(check int) "negative hit counted" 1
    (Policy.Flow_cache.stats c).Policy.Flow_cache.negative_hits

let test_cache_timeout () =
  let c = Policy.Flow_cache.create ~timeout:10.0 () in
  let f = flow "10.0.0.1" "10.1.0.1" in
  let _ =
    Policy.Flow_cache.insert c ~now:0.0 f ~rule_id:0 ~actions:Policy.Action.[ FW ] ()
  in
  Alcotest.(check bool) "hit before timeout" true
    (Policy.Flow_cache.lookup c ~now:9.0 f <> None);
  (* The soft state refreshed at 9.0; it survives until 19.0. *)
  Alcotest.(check bool) "refreshed" true
    (Policy.Flow_cache.lookup c ~now:18.0 f <> None);
  Alcotest.(check bool) "expired" true
    (Policy.Flow_cache.lookup c ~now:40.0 f = None);
  Alcotest.(check int) "expiration counted" 1
    (Policy.Flow_cache.stats c).Policy.Flow_cache.expirations

let test_cache_ls_flag () =
  let c = Policy.Flow_cache.create () in
  let f = flow "10.0.0.1" "10.1.0.1" in
  Alcotest.(check bool) "unknown flow" false (Policy.Flow_cache.mark_ls_ready c f);
  let _ = Policy.Flow_cache.insert_negative c ~now:0.0 f in
  Alcotest.(check bool) "negative flow refuses" false
    (Policy.Flow_cache.mark_ls_ready c f);
  let f2 = flow "10.0.0.2" "10.1.0.1" in
  let _ =
    Policy.Flow_cache.insert c ~now:0.0 f2 ~rule_id:1 ~actions:Policy.Action.[ FW ] ()
  in
  Alcotest.(check bool) "positive flow flags" true
    (Policy.Flow_cache.mark_ls_ready c f2);
  match Policy.Flow_cache.lookup c ~now:0.0 f2 with
  | Some e -> Alcotest.(check bool) "flag visible" true e.Policy.Flow_cache.ls_ready
  | None -> Alcotest.fail "expected hit"

let test_cache_capacity_eviction () =
  let c = Policy.Flow_cache.create ~timeout:1000.0 ~capacity:3 () in
  let flows =
    Array.init 5 (fun i -> flow (Printf.sprintf "10.0.0.%d" (i + 1)) "10.1.0.1")
  in
  (* Fill to capacity at staggered times; flow 0 is the LRU. *)
  Array.iteri
    (fun i f ->
      if i < 3 then
        ignore
          (Policy.Flow_cache.insert c ~now:(float_of_int i) f ~rule_id:i
             ~actions:Policy.Action.[ FW ] ()))
    flows;
  Alcotest.(check int) "full" 3 (Policy.Flow_cache.size c);
  (* A fourth flow evicts the least-recently-used (flow 0). *)
  ignore
    (Policy.Flow_cache.insert c ~now:10.0 flows.(3) ~rule_id:3
       ~actions:Policy.Action.[ FW ] ());
  Alcotest.(check int) "still at capacity" 3 (Policy.Flow_cache.size c);
  Alcotest.(check bool) "LRU gone" true
    (Policy.Flow_cache.lookup c ~now:10.0 flows.(0) = None);
  Alcotest.(check bool) "recent survivor" true
    (Policy.Flow_cache.lookup c ~now:10.0 flows.(2) <> None);
  Alcotest.(check int) "eviction counted" 1
    (Policy.Flow_cache.stats c).Policy.Flow_cache.evictions;
  (* Re-inserting a present flow does not evict. *)
  ignore
    (Policy.Flow_cache.insert c ~now:11.0 flows.(3) ~rule_id:3
       ~actions:Policy.Action.[ FW ] ());
  Alcotest.(check int) "no extra eviction" 1
    (Policy.Flow_cache.stats c).Policy.Flow_cache.evictions

let test_cache_capacity_prefers_expired () =
  let c = Policy.Flow_cache.create ~timeout:5.0 ~capacity:2 () in
  let f1 = flow "10.0.0.1" "10.1.0.1" and f2 = flow "10.0.0.2" "10.1.0.1" in
  let f3 = flow "10.0.0.3" "10.1.0.1" in
  ignore (Policy.Flow_cache.insert c ~now:0.0 f1 ~rule_id:0 ~actions:[] ());
  ignore (Policy.Flow_cache.insert c ~now:20.0 f2 ~rule_id:1 ~actions:[] ());
  (* f1 has expired by now: inserting f3 reclaims it without an LRU
     eviction. *)
  ignore (Policy.Flow_cache.insert c ~now:21.0 f3 ~rule_id:2 ~actions:[] ());
  Alcotest.(check int) "no forced eviction" 0
    (Policy.Flow_cache.stats c).Policy.Flow_cache.evictions;
  Alcotest.(check bool) "fresh entry present" true
    (Policy.Flow_cache.lookup c ~now:21.0 f2 <> None)

let test_cache_purge () =
  let c = Policy.Flow_cache.create ~timeout:5.0 () in
  for i = 0 to 9 do
    let f = flow (Printf.sprintf "10.0.0.%d" (i + 1)) "10.1.0.1" in
    let _ =
      Policy.Flow_cache.insert c ~now:(float_of_int i) f ~rule_id:i
        ~actions:Policy.Action.[ FW ] ()
    in
    ()
  done;
  Alcotest.(check int) "size before purge" 10 (Policy.Flow_cache.size c);
  let dropped = Policy.Flow_cache.purge c ~now:11.0 in
  Alcotest.(check int) "entries older than 5 dropped" 6 dropped;
  Alcotest.(check int) "size after purge" 4 (Policy.Flow_cache.size c)

let test_cache_cfg_version () =
  (* The admitting configuration version rides in the entry: live
     reconfigurations keep a flow's steering sticky to it. *)
  let c = Policy.Flow_cache.create () in
  let f0 = flow "10.0.0.1" "10.1.0.1" in
  let f3 = flow "10.0.0.2" "10.1.0.1" in
  let _ =
    Policy.Flow_cache.insert c ~now:0.0 f0 ~rule_id:1 ~actions:Policy.Action.[ FW ] ()
  in
  let _ =
    Policy.Flow_cache.insert c ~now:0.0 f3 ~rule_id:1 ~actions:Policy.Action.[ FW ]
      ~cfg_version:3 ()
  in
  (match Policy.Flow_cache.lookup c ~now:1.0 f0 with
  | Some e ->
    Alcotest.(check int) "static default" 0 e.Policy.Flow_cache.cfg_version
  | None -> Alcotest.fail "expected hit");
  match Policy.Flow_cache.lookup c ~now:1.0 f3 with
  | Some e ->
    Alcotest.(check int) "explicit version kept" 3 e.Policy.Flow_cache.cfg_version
  | None -> Alcotest.fail "expected hit"

let test_cache_negative_entry_shape () =
  let c = Policy.Flow_cache.create () in
  let f = flow "10.0.0.9" "10.1.0.1" in
  let e = Policy.Flow_cache.insert_negative c ~now:0.0 f in
  Alcotest.(check bool) "no actions" true (e.Policy.Flow_cache.actions = None);
  Alcotest.(check int) "sentinel rule id" (-1) e.Policy.Flow_cache.rule_id;
  Alcotest.(check (option int)) "no label" None e.Policy.Flow_cache.label;
  Alcotest.(check int) "static version" 0 e.Policy.Flow_cache.cfg_version;
  Alcotest.(check (float 1e-9)) "default timeout" 60.0
    (Policy.Flow_cache.timeout c)

let test_cache_negative_ttl () =
  (* Negative entries age against their own, shorter, TTL. *)
  let c = Policy.Flow_cache.create ~timeout:100.0 ~negative_timeout:5.0 () in
  Alcotest.(check (float 1e-9)) "accessor" 5.0
    (Policy.Flow_cache.negative_timeout c);
  let neg = flow "10.0.0.1" "10.1.0.1" and pos = flow "10.0.0.2" "10.1.0.1" in
  ignore (Policy.Flow_cache.insert_negative c ~now:0.0 neg);
  ignore
    (Policy.Flow_cache.insert c ~now:0.0 pos ~rule_id:0
       ~actions:Policy.Action.[ FW ] ());
  Alcotest.(check bool) "negative alive within its TTL" true
    (Policy.Flow_cache.lookup c ~now:4.0 neg <> None);
  (* The 4.0 hit refreshed it; expired by 10.0 all the same. *)
  Alcotest.(check bool) "negative expired at its own TTL" true
    (Policy.Flow_cache.lookup c ~now:10.0 neg = None);
  Alcotest.(check bool) "same-age positive survives" true
    (Policy.Flow_cache.lookup c ~now:10.0 pos <> None);
  Alcotest.(check int) "expired negative left the table" 1
    (Policy.Flow_cache.size c);
  (* A poisoned entry (positive flipped to negative) ages against the
     negative TTL too — poisoning cannot extend a slot's life. *)
  ignore
    (Policy.Flow_cache.insert c ~now:10.0 neg ~rule_id:1
       ~actions:Policy.Action.[ IDS ] ());
  Alcotest.(check bool) "poison hits" true
    (Policy.Flow_cache.unsafe_poison_negative c neg);
  Alcotest.(check bool) "poisoned entry expired as negative" true
    (Policy.Flow_cache.lookup c ~now:20.0 neg = None)

let test_cache_negative_capacity_pressure () =
  (* A negative entry past its own TTL is reclaimed by the
     expired-first pass: it must not force an LRU eviction of a live
     positive entry (the slot-pinning regression). *)
  let c =
    Policy.Flow_cache.create ~timeout:1000.0 ~negative_timeout:5.0 ~capacity:2
      ()
  in
  let neg = flow "10.0.0.1" "10.1.0.1" in
  let pos1 = flow "10.0.0.2" "10.1.0.1" and pos2 = flow "10.0.0.3" "10.1.0.1" in
  ignore (Policy.Flow_cache.insert_negative c ~now:0.0 neg);
  ignore
    (Policy.Flow_cache.insert c ~now:1.0 pos1 ~rule_id:0
       ~actions:Policy.Action.[ FW ] ());
  ignore
    (Policy.Flow_cache.insert c ~now:10.0 pos2 ~rule_id:1
       ~actions:Policy.Action.[ FW ] ());
  Alcotest.(check int) "no forced eviction" 0
    (Policy.Flow_cache.stats c).Policy.Flow_cache.evictions;
  Alcotest.(check bool) "negative slot reclaimed" true
    (Policy.Flow_cache.lookup c ~now:10.0 neg = None);
  Alcotest.(check bool) "older positive survives" true
    (Policy.Flow_cache.lookup c ~now:10.0 pos1 <> None);
  (* A still-live negative entry is a legal LRU victim like any other:
     pressure evicts it first when it is the oldest. *)
  let c2 =
    Policy.Flow_cache.create ~timeout:1000.0 ~negative_timeout:5.0 ~capacity:2
      ()
  in
  ignore (Policy.Flow_cache.insert_negative c2 ~now:0.0 neg);
  ignore
    (Policy.Flow_cache.insert c2 ~now:1.0 pos1 ~rule_id:0
       ~actions:Policy.Action.[ FW ] ());
  let pos3 = flow "10.0.0.4" "10.1.0.1" in
  ignore
    (Policy.Flow_cache.insert c2 ~now:2.0 pos3 ~rule_id:2
       ~actions:Policy.Action.[ FW ] ());
  Alcotest.(check int) "live LRU eviction counted" 1
    (Policy.Flow_cache.stats c2).Policy.Flow_cache.evictions;
  Alcotest.(check bool) "live negative was the LRU victim" true
    (Policy.Flow_cache.lookup c2 ~now:2.0 neg = None);
  Alcotest.(check bool) "positives survive" true
    (Policy.Flow_cache.lookup c2 ~now:2.0 pos1 <> None
    && Policy.Flow_cache.lookup c2 ~now:2.0 pos3 <> None)

let test_cache_digest_and_poison () =
  let c = Policy.Flow_cache.create () in
  Alcotest.(check int64) "empty digest" 0L (Policy.Flow_cache.digest c);
  let f1 = flow "10.0.0.1" "10.1.0.1" and f2 = flow "10.0.0.2" "10.1.0.1" in
  ignore
    (Policy.Flow_cache.insert c ~now:0.0 f1 ~rule_id:3
       ~actions:Policy.Action.[ FW; IDS ] ~label:9 ());
  ignore (Policy.Flow_cache.insert_negative c ~now:0.0 f2);
  Alcotest.(check int64) "incremental = recomputed"
    (Policy.Flow_cache.recompute_digest c)
    (Policy.Flow_cache.digest c);
  (* ls_ready and refreshes are legitimate in-place mutations that
     must not perturb the digest. *)
  ignore (Policy.Flow_cache.mark_ls_ready c f1);
  ignore (Policy.Flow_cache.lookup c ~now:5.0 f1);
  Alcotest.(check int64) "mutable fields excluded"
    (Policy.Flow_cache.recompute_digest c)
    (Policy.Flow_cache.digest c);
  (* Poisoning bypasses maintenance: the digests disagree until scrub
     purges the stale-checksum entry and rebases. *)
  Alcotest.(check bool) "poison hits" true
    (Policy.Flow_cache.unsafe_poison_negative c f1);
  Alcotest.(check bool) "already-negative refuses" false
    (Policy.Flow_cache.unsafe_poison_negative c f2);
  Alcotest.(check bool) "absent flow refuses" false
    (Policy.Flow_cache.unsafe_poison_actions c
       (flow "10.0.0.9" "10.1.0.1")
       ~actions:Policy.Action.[ FW ]);
  Alcotest.(check bool) "mismatch detectable" true
    (Policy.Flow_cache.digest c <> Policy.Flow_cache.recompute_digest c);
  (match Policy.Flow_cache.scrub c with
  | [ f ] when Netpkt.Flow.equal f f1 -> ()
  | l -> Alcotest.failf "expected [f1] purged, got %d flows" (List.length l));
  Alcotest.(check int64) "digest rebased"
    (Policy.Flow_cache.recompute_digest c)
    (Policy.Flow_cache.digest c);
  Alcotest.(check bool) "clean survivor kept" true
    (Policy.Flow_cache.lookup c ~now:5.0 f2 <> None)

let suite =
  [
    Alcotest.test_case "action structure" `Quick test_action_structure;
    Alcotest.test_case "action strings" `Quick test_action_strings;
    Alcotest.test_case "descriptor matching" `Quick test_descriptor_matching;
    Alcotest.test_case "descriptor port range" `Quick test_descriptor_port_range;
    Alcotest.test_case "descriptor proto" `Quick test_descriptor_proto;
    Alcotest.test_case "descriptor overlap" `Quick test_descriptor_overlap;
    Alcotest.test_case "Table I first-match (inbound)" `Quick test_table_one_first_match;
    Alcotest.test_case "Table I first-match (outbound)" `Quick test_table_one_outbound;
    Alcotest.test_case "no match" `Quick test_no_match;
    Alcotest.test_case "P_x relevance" `Quick test_relevance;
    Alcotest.test_case "trie matches Table I" `Quick test_trie_matches_table_one;
    QCheck_alcotest.to_alcotest qcheck_trie_equals_linear;
    Alcotest.test_case "dectree matches Table I" `Quick test_dectree_matches_table_one;
    QCheck_alcotest.to_alcotest qcheck_dectree_equals_linear;
    Alcotest.test_case "dectree structure sane" `Quick test_dectree_structure_sane;
    Alcotest.test_case "dectree empty" `Quick test_dectree_empty;
    Alcotest.test_case "trie empty" `Quick test_trie_empty;
    Alcotest.test_case "DSL basic parse" `Quick test_dsl_parse_basic;
    Alcotest.test_case "DSL permit and ranges" `Quick test_dsl_parse_permit_and_ranges;
    Alcotest.test_case "DSL parse errors" `Quick test_dsl_parse_errors;
    Alcotest.test_case "DSL document" `Quick test_dsl_document;
    Alcotest.test_case "DSL error position" `Quick test_dsl_document_error_position;
    Alcotest.test_case "DSL Table I roundtrip" `Quick test_dsl_table_one_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_dsl_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_dsl_never_crashes;
    Alcotest.test_case "cache insert/lookup" `Quick test_cache_insert_lookup;
    Alcotest.test_case "cache config version" `Quick test_cache_cfg_version;
    Alcotest.test_case "cache negative entry shape" `Quick
      test_cache_negative_entry_shape;
    Alcotest.test_case "cache negative entries" `Quick test_cache_negative;
    Alcotest.test_case "cache soft-state timeout" `Quick test_cache_timeout;
    Alcotest.test_case "cache label-switch flag" `Quick test_cache_ls_flag;
    Alcotest.test_case "cache purge" `Quick test_cache_purge;
    Alcotest.test_case "cache capacity eviction" `Quick test_cache_capacity_eviction;
    Alcotest.test_case "cache capacity prefers expired" `Quick
      test_cache_capacity_prefers_expired;
    Alcotest.test_case "cache negative TTL" `Quick test_cache_negative_ttl;
    Alcotest.test_case "cache negative capacity pressure" `Quick
      test_cache_negative_capacity_pressure;
    Alcotest.test_case "cache digest and poison" `Quick
      test_cache_digest_and_poison;
  ]
