type t = { origin : int; seq : int; links : (int * float) list }

let make ~origin ~seq ~links =
  let links = List.sort (fun (a, _) (b, _) -> compare a b) links in
  { origin; seq; links }

let newer_than a b =
  if a.origin <> b.origin then invalid_arg "Lsa.newer_than: different origins";
  a.seq > b.seq

let pp ppf t =
  Format.fprintf ppf "LSA(origin=%d seq=%d links=[%a])" t.origin t.seq
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       (fun ppf (n, c) -> Format.fprintf ppf "%d@%.0f" n c))
    t.links
