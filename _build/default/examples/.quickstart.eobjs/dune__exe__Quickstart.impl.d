examples/quickstart.ml: Array Format List Mbox Netgraph Netpkt Option Policy Sdm
