type var = int

type cmp = Le | Ge | Eq

type row = { terms : (float * var) list; cmp : cmp; rhs : float }

type t = {
  id : int; (* instance identity, gating snapshot row-cache reuse *)
  mutable names : string list; (* reversed *)
  mutable n : int;
  mutable rows : row list; (* reversed *)
  mutable m : int;
  mutable objective : (float * var) list;
  (* Row-mutation log for diff-aware re-solving: [mut_seq] bumps on
     every in-place row edit, [mut_log] records (seq, row index)
     newest-first.  A snapshot remembers the seq it was taken at, so
     [resolve] re-densifies exactly the rows edited since. *)
  mutable mut_seq : int;
  mutable mut_log : (int * int) list;
}

type solution = { objective : float; values : float array }

type outcome = Optimal of solution | Infeasible | Unbounded

type snapshot = {
  sn_model : int;
  sn_n : int;
  sn_m : int;
  sn_seq : int;
  sn_rows : (float array * Simplex.sense * float) array;
  sn_basis : Simplex.basis option;
}

(* Atomic: models are created inside worker domains during parallel
   experiment fan-out.  The id never reaches any output — it only
   keeps one model's snapshot from poisoning another's row cache. *)
let next_id = Atomic.make 0

let create () =
  {
    id = Atomic.fetch_and_add next_id 1;
    names = [];
    n = 0;
    rows = [];
    m = 0;
    objective = [];
    mut_seq = 0;
    mut_log = [];
  }

let var t name =
  let id = t.n in
  t.n <- id + 1;
  t.names <- name :: t.names;
  id

let var_index v = v

let var_name t v =
  if v < 0 || v >= t.n then invalid_arg "Model.var_name: bad variable";
  List.nth t.names (t.n - 1 - v)

let num_vars t = t.n
let num_constraints t = t.m

let check_terms t terms =
  List.iter
    (fun (_, v) ->
      if v < 0 || v >= t.n then invalid_arg "Model: variable from another model")
    terms

(* Sum duplicate variables so each appears once per row. *)
let normalise terms =
  let tbl = Hashtbl.create (List.length terms) in
  List.iter
    (fun (c, v) ->
      let prev = Option.value ~default:0.0 (Hashtbl.find_opt tbl v) in
      Hashtbl.replace tbl v (prev +. c))
    terms;
  Hashtbl.fold (fun v c acc -> if c = 0.0 then acc else (c, v) :: acc) tbl []

let add_constraint t terms cmp rhs =
  check_terms t terms;
  t.rows <- { terms = normalise terms; cmp; rhs } :: t.rows;
  t.m <- t.m + 1

(* In-place row edits.  [i] is the constraint's insertion index; the
   internal list is reversed, so position [m - 1 - i] is the target. *)
let touch t i =
  t.mut_seq <- t.mut_seq + 1;
  t.mut_log <- (t.mut_seq, i) :: t.mut_log

let edit_row t i f =
  if i < 0 || i >= t.m then invalid_arg "Model: bad constraint index";
  let pos = t.m - 1 - i in
  t.rows <- List.mapi (fun j r -> if j = pos then f r else r) t.rows;
  touch t i

let set_rhs t i rhs = edit_row t i (fun r -> { r with rhs })

let replace_constraint t i terms cmp rhs =
  check_terms t terms;
  edit_row t i (fun _ -> { terms = normalise terms; cmp; rhs })

let set_objective t terms =
  check_terms t terms;
  t.objective <- normalise terms

let value sol v = sol.values.(v)

let dense_row n { terms; cmp; rhs } =
  let coefs = Array.make n 0.0 in
  List.iter (fun (c, v) -> coefs.(v) <- coefs.(v) +. c) terms;
  let sense =
    match cmp with Le -> Simplex.Le | Ge -> Simplex.Ge | Eq -> Simplex.Eq
  in
  (coefs, sense, rhs)

let dense_cost t =
  let cost = Array.make t.n 0.0 in
  List.iter (fun (c, v) -> cost.(v) <- cost.(v) +. c) t.objective;
  cost

(* Densify all rows, reusing [prev]'s cached dense rows for every
   index that is still clean: same variable count, below the previous
   row count, and not edited since the snapshot was taken.  The cached
   tuples are safe to share — the simplex engine copies coefficients
   into its own tableau and never mutates its inputs. *)
let dense_rows ?prev t =
  let rows = Array.of_list (List.rev t.rows) in
  match prev with
  | Some p when p.sn_model = t.id && p.sn_n = t.n ->
    let dirty = Array.make (Stdlib.min p.sn_m t.m) false in
    let rec mark = function
      | (seq, i) :: rest when seq > p.sn_seq ->
        if i < Array.length dirty then dirty.(i) <- true;
        mark rest
      | _ -> ()
    in
    mark t.mut_log;
    Array.mapi
      (fun i r ->
        if i < p.sn_m && not dirty.(i) then p.sn_rows.(i) else dense_row t.n r)
      rows
  | _ -> Array.map (dense_row t.n) rows

let outcome_of cost = function
  | Simplex.Optimal values ->
    let objective =
      Array.fold_left ( +. ) 0.0 (Array.mapi (fun i v -> cost.(i) *. v) values)
    in
    Optimal { objective; values }
  | Simplex.Infeasible -> Infeasible
  | Simplex.Unbounded -> Unbounded

let solve_ext ?prev t =
  let cost = dense_cost t in
  let rows = dense_rows ?prev t in
  let warm_basis =
    match prev with
    | Some { sn_n; sn_m; sn_basis = Some b; _ } when sn_n = t.n && sn_m = t.m
      ->
      Some b
    | _ -> None
  in
  let outcome, stats, basis = Simplex.solve_ext ?warm_basis ~cost ~rows () in
  let stats =
    (* A snapshot that could not even be offered to the engine (grown
       model, or a previous solve that was not optimal) is still a
       failed warm attempt from the caller's point of view. *)
    if prev <> None && not stats.Simplex.warm_used then
      { stats with Simplex.fallback = true }
    else stats
  in
  let snapshot =
    { sn_model = t.id; sn_n = t.n; sn_m = t.m; sn_seq = t.mut_seq;
      sn_rows = rows; sn_basis = basis }
  in
  (outcome_of cost outcome, stats, snapshot)

let resolve t ~prev = solve_ext ~prev t

let solve t =
  let cost = dense_cost t in
  let rows = dense_rows t in
  outcome_of cost (Simplex.solve ~cost ~rows)

let pp_outcome ppf = function
  | Optimal { objective; _ } -> Format.fprintf ppf "optimal(%.6g)" objective
  | Infeasible -> Format.pp_print_string ppf "infeasible"
  | Unbounded -> Format.pp_print_string ppf "unbounded"
