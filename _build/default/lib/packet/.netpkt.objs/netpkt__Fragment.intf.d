lib/packet/fragment.mli: Packet
