let connected ~rng ~nodes ?extra_edges ?(max_cost = 5) () =
  if nodes < 1 then invalid_arg "Random_graph.connected: need at least one node";
  if max_cost < 1 then invalid_arg "Random_graph.connected: max_cost must be >= 1";
  let extra = Option.value ~default:(nodes / 2) extra_edges in
  let g = Graph.create nodes in
  let cost () = float_of_int (1 + Stdx.Rng.int rng max_cost) in
  (* Random spanning tree: attach each node to an earlier one. *)
  for v = 1 to nodes - 1 do
    Graph.add_edge g (Stdx.Rng.int rng v) v (cost ())
  done;
  let attempts = ref 0 and added = ref 0 in
  while !added < extra && !attempts < 20 * (extra + 1) do
    incr attempts;
    let u = Stdx.Rng.int rng nodes and v = Stdx.Rng.int rng nodes in
    if u <> v && not (Graph.has_edge g u v) then begin
      Graph.add_edge g u v (cost ());
      incr added
    end
  done;
  g

let topology ~rng ~nodes ?extra_edges ?max_cost ?(name = "random") () =
  let graph = connected ~rng ~nodes ?extra_edges ?max_cost () in
  Topology.make ~name ~graph ~roles:(Array.make nodes Topology.Core)
