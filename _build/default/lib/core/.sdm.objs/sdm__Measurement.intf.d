lib/core/measurement.mli:
