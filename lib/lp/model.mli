(** Linear-program builder.

    Minimisation over non-negative variables with sparse rows — all
    the generality the paper's load-balancing formulations Eq. (1) and
    Eq. (2) require.  Build a model incrementally, then {!solve} hands
    it to the {!Simplex} engine.

    {b Incremental re-solving.}  {!solve_ext} returns a {!snapshot}
    (dense row cache plus the optimal simplex basis); after editing
    the model — objective coefficients via {!set_objective}, RHS
    capacities via {!set_rhs}, a bounded set of rows via
    {!replace_constraint}, or appended constraints — {!resolve} reuses
    every unchanged dense row and, when the row layout is intact,
    warm-starts the simplex from the previous basis.  Any structural
    change (new variables, new rows, a sense or RHS-sign flip) falls
    back to the cold path automatically; the outcome is always one the
    cold path would also produce. *)

type t

type var
(** A variable handle, valid only for the model that created it. *)

type cmp = Le | Ge | Eq

type solution = {
  objective : float;
  values : float array; (** indexed by {!var_index} *)
}

type outcome = Optimal of solution | Infeasible | Unbounded

type snapshot
(** The reusable residue of a {!solve_ext}: variable/row counts, the
    densified rows, and (when the solve was optimal) the final simplex
    basis.  The row cache is only honoured by the model instance that
    produced it; the basis is portable to any model whose densified
    layout still matches (the cross-rebuild warm path the live
    controller uses), with the simplex engine checking compatibility
    and falling back cold otherwise. *)

val create : unit -> t

val var : t -> string -> var
(** Fresh non-negative variable.  The name is kept for debugging and
    duplicate detection is not performed. *)

val var_index : var -> int
val var_name : t -> var -> string
val num_vars : t -> int
val num_constraints : t -> int

val add_constraint : t -> (float * var) list -> cmp -> float -> unit
(** [add_constraint t terms cmp rhs] adds [Σ coef·var cmp rhs].
    Repeated variables in [terms] are summed. *)

val set_rhs : t -> int -> float -> unit
(** [set_rhs t i rhs] replaces the right-hand side of the [i]-th
    constraint (insertion order).  Raises [Invalid_argument] on a bad
    index. *)

val replace_constraint : t -> int -> (float * var) list -> cmp -> float -> unit
(** Replace the [i]-th constraint (insertion order) wholesale; terms
    are normalised as in {!add_constraint}. *)

val set_objective : t -> (float * var) list -> unit
(** Minimised objective; variables not mentioned have cost 0. *)

val value : solution -> var -> float

val solve : t -> outcome
(** Cold solve — bit-identical to {!solve_ext} without a snapshot. *)

val solve_ext : ?prev:snapshot -> t -> outcome * Simplex.stats * snapshot
(** Solve, reporting pivot/fallback counters and the snapshot for a
    later {!resolve}.  With [?prev], unchanged rows are not
    re-densified and the simplex warm-starts from the previous basis
    when the row layout still matches ([Simplex.stats.warm_used]);
    otherwise the cold path runs and [fallback] is set. *)

val resolve : t -> prev:snapshot -> outcome * Simplex.stats * snapshot
(** [resolve t ~prev] = [solve_ext ~prev t]: the diff-aware re-solve
    after in-place edits. *)

val pp_outcome : Format.formatter -> outcome -> unit
