type key = { src : Netpkt.Addr.t; label : int }

type entry = {
  actions : Policy.Action.t;
  next : Netpkt.Addr.t option;
  final_dst : Netpkt.Addr.t option;
  version : int;
  mutable last_used : float;
}

type t = { table : (key, entry) Hashtbl.t; timeout : float }

let create ?(timeout = infinity) () =
  if timeout <= 0.0 then invalid_arg "Label_table.create: timeout must be positive";
  { table = Hashtbl.create 256; timeout }

let insert t ~now ?(version = 0) key ~actions ~next ~final_dst =
  (match (next, final_dst) with
  | Some _, Some _ -> invalid_arg "Label_table.insert: both next and final_dst"
  | None, None -> invalid_arg "Label_table.insert: neither next nor final_dst"
  | Some _, None | None, Some _ -> ());
  Hashtbl.replace t.table key
    { actions; next; final_dst; version; last_used = now }

let lookup t ~now key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some entry ->
    if now -. entry.last_used > t.timeout then begin
      Hashtbl.remove t.table key;
      None
    end
    else begin
      entry.last_used <- now;
      Some entry
    end

let size t = Hashtbl.length t.table

let remove t key = Hashtbl.remove t.table key

let purge t ~now =
  let expired =
    Hashtbl.fold
      (fun key entry acc ->
        if now -. entry.last_used > t.timeout then key :: acc else acc)
      t.table []
  in
  List.iter (Hashtbl.remove t.table) expired;
  List.length expired

let purge_versions_below t ~version =
  let stale =
    Hashtbl.fold
      (fun key entry acc -> if entry.version < version then key :: acc else acc)
      t.table []
  in
  List.iter (Hashtbl.remove t.table) stale;
  List.length stale
