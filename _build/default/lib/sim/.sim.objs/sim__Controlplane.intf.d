lib/sim/controlplane.mli: Format Sdm
