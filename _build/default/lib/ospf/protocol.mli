(** Distributed link-state routing over the event engine.

    Drives a {!Router.t} per topology node: at time ~0 every router
    originates its LSA; routers flood over links with a configurable
    propagation delay; the run ends when the event queue drains.  The
    result is each router's forwarding table computed from its own
    database — the distributed counterpart of
    [Netgraph.Routing.build_all], and an integration test asserts the
    two are identical. *)

type stats = {
  messages : int;          (** LSA transmissions on links *)
  convergence_time : float;(** simulated time of the last event *)
}

type result = {
  tables : Netgraph.Routing.table array;
  stats : stats;
}

val converge :
  ?link_delay:float ->
  ?jitter_seed:int ->
  Netgraph.Topology.t ->
  result
(** [converge topo] floods to quiescence and returns per-router tables.
    [link_delay] (default 1.0) is the per-hop propagation delay;
    origination times are jittered deterministically from
    [jitter_seed] (default 7) to exercise asynchrony. *)
