lib/policy/dsl.mli: Action Descriptor Rule
