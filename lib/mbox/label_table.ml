type key = { src : Netpkt.Addr.t; label : int }

type entry = {
  actions : Policy.Action.t;
  next : Netpkt.Addr.t option;
  final_dst : Netpkt.Addr.t option;
  version : int;
  check : int64;
  mutable last_used : float;
}

(* Keyed directly on the (src, label) int pair in a flat
   open-addressing table, so the per-packet label lookup probes two
   int arrays and allocates nothing.  Iteration is insertion order —
   deterministic under a seeded run, which the corruption-target
   selection and the sweep rely on. *)
type t = {
  table : entry Stdx.Flat_table.t;
  timeout : float;
  mutable digest : int64;
}

let create ?(timeout = infinity) () =
  if timeout <= 0.0 then invalid_arg "Label_table.create: timeout must be positive";
  { table = Stdx.Flat_table.create ~initial:256 (); timeout; digest = 0L }

(* Per-entry hash over the key and the immutable payload ([last_used]
   is refreshed on every hit and must not perturb the digest).  The
   avalanche finalizer matters here: entries differing only in the
   label or version would otherwise produce correlated FNV values
   whose XOR could cancel.  The first two folds are the non-allocating
   [combine2] — bit-identical to folding src then label. *)
let entry_hash key ~actions ~next ~final_dst ~version =
  let h = Stdx.Xhash.combine2 key.src key.label in
  let h =
    List.fold_left
      (fun h nf ->
        Stdx.Xhash.fold_int h
          (Int64.to_int (Stdx.Xhash.string (Policy.Action.nf_to_string nf))))
      h actions
  in
  let fold_addr_opt h = function
    | None -> Stdx.Xhash.fold_int h (-1)
    | Some a -> Stdx.Xhash.fold_int (Stdx.Xhash.fold_int h 1) a
  in
  let h = fold_addr_opt h next in
  let h = fold_addr_opt h final_dst in
  Stdx.Xhash.fmix64 (Stdx.Xhash.fold_int h version)

let entry_hash_packed src label (e : entry) =
  entry_hash { src; label } ~actions:e.actions ~next:e.next
    ~final_dst:e.final_dst ~version:e.version

(* Legitimate mutations XOR the *stored* checksum in or out, so an
   insert/remove pair cancels exactly even if the payload was silently
   corrupted in between; only the unsafe_* faults below skip this. *)
let forget t entry = t.digest <- Int64.logxor t.digest entry.check

let insert t ~now ?(version = 0) key ~actions ~next ~final_dst =
  (match (next, final_dst) with
  | Some _, Some _ -> invalid_arg "Label_table.insert: both next and final_dst"
  | None, None -> invalid_arg "Label_table.insert: neither next nor final_dst"
  | Some _, None | None, Some _ -> ());
  if key.label < 0 || key.label > Netpkt.Header.max_label then
    invalid_arg
      (Printf.sprintf "Label_table.insert: label %d outside [0, %d]" key.label
         Netpkt.Header.max_label);
  (match Stdx.Flat_table.find t.table key.src key.label with
  | Some old -> forget t old
  | None -> ());
  let check = entry_hash key ~actions ~next ~final_dst ~version in
  t.digest <- Int64.logxor t.digest check;
  Stdx.Flat_table.replace t.table key.src key.label
    { actions; next; final_dst; version; check; last_used = now }

(* The per-packet entry point: key fields passed flat so the hot path
   builds no key record. *)
let find t ~now ~src ~label =
  let d = Stdx.Flat_table.find_slot t.table src label in
  if d < 0 then None
  else begin
    let entry = Stdx.Flat_table.value t.table d in
    if now -. entry.last_used > t.timeout then begin
      forget t entry;
      Stdx.Flat_table.remove t.table src label;
      None
    end
    else begin
      entry.last_used <- now;
      Some entry
    end
  end

let lookup t ~now key = find t ~now ~src:key.src ~label:key.label

let size t = Stdx.Flat_table.length t.table
let length = size

let iter f t =
  Stdx.Flat_table.iter (fun src label e -> f { src; label } e) t.table

let remove t key =
  match Stdx.Flat_table.find t.table key.src key.label with
  | None -> ()
  | Some entry ->
    forget t entry;
    Stdx.Flat_table.remove t.table key.src key.label

let purge t ~now =
  let expired =
    Stdx.Flat_table.fold
      (fun src label entry acc ->
        if now -. entry.last_used > t.timeout then (src, label, entry) :: acc
        else acc)
      t.table []
  in
  List.iter
    (fun (src, label, entry) ->
      forget t entry;
      Stdx.Flat_table.remove t.table src label)
    expired;
  List.length expired

let purge_versions_below t ~version =
  let stale =
    Stdx.Flat_table.fold
      (fun src label entry acc ->
        if entry.version < version then (src, label, entry) :: acc else acc)
      t.table []
  in
  List.iter
    (fun (src, label, entry) ->
      forget t entry;
      Stdx.Flat_table.remove t.table src label)
    stale;
  List.length stale

let digest t = t.digest

let recompute_digest t =
  Stdx.Flat_table.fold
    (fun src label e acc -> Int64.logxor acc (entry_hash_packed src label e))
    t.table 0L

(* Fault-injection back doors: mutate the table the way a bit flip or
   a lost install would — without touching the incremental digest or
   the per-entry checksum — so the anti-entropy sweep has something
   real to find. *)

let unsafe_corrupt t key ~redirect =
  match Stdx.Flat_table.find t.table key.src key.label with
  | None -> false
  | Some e ->
    let corrupted =
      match e.next with
      | Some _ -> { e with next = Some redirect }
      | None -> { e with final_dst = Some redirect }
    in
    Stdx.Flat_table.replace t.table key.src key.label corrupted;
    true

let unsafe_drop t key =
  if Stdx.Flat_table.mem t.table key.src key.label then begin
    Stdx.Flat_table.remove t.table key.src key.label;
    true
  end
  else false

let unsafe_resurrect t key entry =
  if not (Stdx.Flat_table.mem t.table key.src key.label) then begin
    Stdx.Flat_table.replace t.table key.src key.label entry;
    true
  end
  else false

let scrub t ~version_floor =
  let bad =
    Stdx.Flat_table.fold
      (fun src label e acc ->
        if
          not (Int64.equal (entry_hash_packed src label e) e.check)
          || e.version < version_floor
        then (src, label) :: acc
        else acc)
      t.table []
  in
  List.iter (fun (src, label) -> Stdx.Flat_table.remove t.table src label) bad;
  t.digest <- recompute_digest t;
  List.rev_map (fun (src, label) -> { src; label }) bad
