lib/sim/report.mli: Epochsim Experiment Format
