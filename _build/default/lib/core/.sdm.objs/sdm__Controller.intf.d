lib/core/controller.mli: Candidate Deployment Format Lp_formulation Mbox Measurement Netpkt Policy Stdlib Strategy
