examples/campus_enforcement.ml: Array Format List Mbox Netgraph Policy Sdm Sim Stdx
