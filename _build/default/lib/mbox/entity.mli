(** Enforcement entities: the things the controller configures.

    A policy proxy (one per stub network) or a middlebox.  Both kinds
    hold policy tables, flow caches and next-hop candidate sets; the
    controller addresses its configuration to entities, and the LP
    formulations index traffic variables by entity. *)

type t = Proxy of int | Middlebox of int

val compare : t -> t -> int
val equal : t -> t -> bool

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val hash_key : t -> int
(** A collision-free int key (proxies even, middleboxes odd) for use
    in hashtables. *)
