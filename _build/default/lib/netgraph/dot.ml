let shape_of = function
  | Topology.Gateway -> "diamond"
  | Topology.Core -> "circle"
  | Topology.Edge -> "box"

let topology ?(extra_labels = []) ppf (t : Topology.t) =
  Format.fprintf ppf "graph %s {@." t.name;
  Format.fprintf ppf "  layout=neato;@.  overlap=false;@.";
  let n = Graph.node_count t.graph in
  for i = 0 to n - 1 do
    let role = Topology.role t i in
    let extra =
      match List.assoc_opt i extra_labels with
      | Some s -> Printf.sprintf "\\n%s" s
      | None -> ""
    in
    Format.fprintf ppf "  n%d [shape=%s, label=\"%s%d%s\"];@." i (shape_of role)
      (Topology.role_to_string role)
      i extra
  done;
  List.iter
    (fun (u, v, cost) ->
      if cost = 1.0 then Format.fprintf ppf "  n%d -- n%d;@." u v
      else Format.fprintf ppf "  n%d -- n%d [label=\"%.0f\"];@." u v cost)
    (Graph.edges t.graph);
  Format.fprintf ppf "}@."
