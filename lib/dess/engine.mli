(** Discrete-event simulation engine.

    The substrate that replaces OMNET++ in this reproduction.  A
    simulation is a priority queue of timestamped callbacks; events
    scheduled for the same instant fire in FIFO order (stable sequence
    numbers), which keeps packet-level runs deterministic.

    The engine is deliberately minimal: no processes, channels or
    modules — network nodes are ordinary OCaml values whose handlers
    schedule further events.  That is all the paper's evaluation needs
    and it keeps the packet simulator easy to audit. *)

type t

type handle
(** Identifies a scheduled event so it can be cancelled. *)

val create : unit -> t

val now : t -> float
(** Current simulated time; 0.0 before the first event runs. *)

val schedule : t -> delay:float -> (t -> unit) -> handle
(** [schedule t ~delay f] fires [f] at [now t +. delay].
    Raises [Invalid_argument] on negative delays. *)

val schedule_at : t -> time:float -> (t -> unit) -> handle
(** Absolute-time variant.  Raises [Invalid_argument] if [time] is in
    the past. *)

val cancel : t -> handle -> unit
(** Cancelling an already-fired or cancelled event is a no-op. *)

val pending : t -> int
(** Number of events still queued (cancelled ones may be counted until
    they are lazily discarded). *)

val step : t -> bool
(** Run the single earliest event.  [false] if the queue was empty. *)

val run : ?until:float -> t -> unit
(** Run events until the queue drains, or (if [until] is given) until
    the next event would fire strictly after [until]; simulated time
    then rests at the last fired event. *)

val events_processed : t -> int
(** Events fired so far (cancelled events are not counted). *)

val events_scheduled : t -> int
(** Events ever scheduled, fired or not.  Together with
    {!events_processed} this is the cost model of a simulation: the
    packet simulator's fast-forwarding exists to shrink these numbers
    without changing any statistic. *)
