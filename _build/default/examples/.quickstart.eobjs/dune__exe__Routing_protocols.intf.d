examples/routing_protocols.mli:
