type tree = { source : int; dist : float array; prev : int array }

(* Heap entries are (distance, predecessor, node): comparing the full
   triple realises the lowest-predecessor-id tie-break. *)
let cmp (d1, p1, n1) (d2, p2, n2) =
  match compare d1 d2 with
  | 0 -> ( match compare p1 p2 with 0 -> compare n1 n2 | c -> c)
  | c -> c

let run g source =
  let n = Graph.node_count g in
  if source < 0 || source >= n then invalid_arg "Dijkstra.run: bad source";
  let dist = Array.make n infinity in
  let prev = Array.make n (-1) in
  let final = Array.make n false in
  let heap = Stdx.Heap.create ~cmp in
  dist.(source) <- 0.0;
  Stdx.Heap.push heap (0.0, -1, source);
  let rec loop () =
    match Stdx.Heap.pop heap with
    | None -> ()
    | Some (d, p, u) ->
      if not final.(u) then begin
        final.(u) <- true;
        dist.(u) <- d;
        prev.(u) <- p;
        List.iter
          (fun { Graph.dst; cost } ->
            if not final.(dst) then begin
              let nd = d +. cost in
              (* Push relaxations even on ties: the heap order picks the
                 lowest-predecessor candidate among equal distances. *)
              if nd <= dist.(dst) then begin
                dist.(dst) <- nd;
                Stdx.Heap.push heap (nd, u, dst)
              end
            end)
          (Graph.neighbors g u)
      end;
      loop ()
  in
  loop ();
  { source; dist; prev }

let distance t v = if t.dist.(v) = infinity then None else Some t.dist.(v)

let path t v =
  if t.dist.(v) = infinity then None
  else begin
    let rec build acc u = if u = t.source then u :: acc else build (u :: acc) t.prev.(u) in
    Some (build [] v)
  end

let first_hop t v =
  match path t v with
  | None | Some [ _ ] -> None
  | Some (_ :: hop :: _) -> Some hop
  | Some [] -> None

let all_pairs g =
  let n = Graph.node_count g in
  Array.init n (fun u -> (run g u).dist)
