lib/netgraph/topology.ml: Array Format Graph List
