(** IP fragmentation model.

    Only the arithmetic the evaluation needs: how many fragments a
    packet of a given size produces under a given MTU, and the
    fragment list itself (each fragment re-carries the outer header).
    Sec. III.E's label switching exists precisely to keep tunnelled
    packets at their original size so this count stays 1. *)

val default_mtu : int
(** 1500, Ethernet. *)

val count : mtu:int -> int -> int
(** [count ~mtu size] — fragments needed for an IP packet of [size]
    total bytes (header included).  1 when it fits.  Raises
    [Invalid_argument] if the MTU cannot even carry a header plus one
     8-byte block. *)

val fragments : mtu:int -> Packet.t -> Packet.t list
(** Split a packet; fragment payloads are multiples of 8 bytes except
    the last.  An encapsulated packet fragments on its outer header;
    the inner packet's bytes count as opaque payload (reassembly
    happens at the tunnel endpoint).  Byte conservation:
    total payload bytes are preserved, one extra header per extra
    fragment. *)

val extra_bytes : mtu:int -> int -> int
(** Overhead bytes added by fragmentation of a packet of the given
    size: (count - 1) * header size. *)
