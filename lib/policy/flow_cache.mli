(** Per-node flow cache (Sec. III.D) with the label-switching
    extensions of Sec. III.E.

    Stores ⟨flow-id, action-list⟩ pairs so only the first packet of a
    flow pays the multi-field policy lookup.  Misses against both the
    cache and the policy table insert a *negative* entry (action
    [None]) so later packets of a no-policy flow skip the policy table
    too.  Entries are soft state: not being touched for [timeout] time
    units makes them reclaimable.

    A proxy additionally stores in each positive entry the locally
    unique label it assigned to the flow and — once the control packet
    from the last middlebox in the chain arrives — the
    "label-switching ready" flag. *)

type entry = {
  actions : Action.t option;  (** [None] = negative (no policy matched) *)
  rule_id : int;              (** matching rule id, -1 for negative entries *)
  label : int option;         (** proxy-assigned label, if any *)
  cfg_version : int;
      (** configuration version that admitted the flow; steering
          decisions for the flow stay sticky to it across live
          reconfigurations (0 for static configurations) *)
  mutable ls_ready : bool;    (** label-switched path established *)
  mutable last_used : float;
}

type stats = {
  mutable hits : int;
  mutable negative_hits : int;
  mutable misses : int;
  mutable expirations : int;
  mutable evictions : int;  (** capacity-forced LRU evictions *)
}

type t

val create : ?timeout:float -> ?capacity:int -> ?expected:int -> unit -> t
(** [timeout] defaults to 60.0 time units.  [capacity] (default
    unbounded) caps the entry count, as a hardware hash table would:
    inserting into a full cache first drops expired entries, then
    evicts the least-recently-used one (counted in
    {!stats}.[evictions]).  [expected] (default 256) is a sizing hint
    — the anticipated live population, e.g. flows per device on a
    large run — that pre-sizes the underlying table (clamped by
    [capacity]) to avoid rehash churn; it never changes behaviour. *)

val lookup : t -> now:float -> Netpkt.Flow.t -> entry option
(** Refreshes [last_used] on hit; an entry past its timeout is treated
    as absent (and removed).  Updates {!stats}. *)

val insert :
  t -> now:float -> Netpkt.Flow.t -> rule_id:int -> actions:Action.t ->
  ?label:int -> ?cfg_version:int -> unit -> entry
(** [cfg_version] defaults to 0 (static configuration). *)

val insert_negative : t -> now:float -> Netpkt.Flow.t -> entry

val mark_ls_ready : t -> Netpkt.Flow.t -> bool
(** Flag the entry for label switching (on receipt of the control
    packet).  [false] if the flow is unknown or negative. *)

val purge : t -> now:float -> int
(** Evict every expired entry; returns how many were dropped. *)

val size : t -> int
val stats : t -> stats
val timeout : t -> float
