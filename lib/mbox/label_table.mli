(** Per-middlebox label tables (Sec. III.E).

    Keyed by ⟨source address | label⟩ — the concatenation the paper
    uses, which is unique because each proxy assigns labels that are
    locally unique and the source address survives along the chain.
    An entry records the flow's action list, the next-hop middlebox
    chosen when the first (tunnelled) packet passed by — label-switched
    packets must retrace the same middleboxes, since only those hold
    the entry — and, at the last middlebox of the chain, the original
    destination address to restore.

    Entries are soft state like the flow cache's: a table created with
    a [timeout] treats entries idle for longer than that as absent.
    The packet simulator recovers from an expired entry by tearing the
    label-switched path down to the proxy, which falls back to
    IP-over-IP and re-establishes it.

    {2 State digest}

    The table maintains an order-independent digest — the XOR of an
    avalanche-finalized per-entry hash over every live entry — updated
    incrementally by each legitimate mutation (insert, remove, expiry,
    purge).  Each entry additionally stores the hash of its own
    immutable payload as a checksum.  The [unsafe_*] fault-injection
    operations mutate the table {e without} maintaining either, which
    is exactly what a bit flip, a lost install, or a stale resurrection
    does: {!digest} then disagrees with {!recompute_digest}, the
    anti-entropy sweep notices, and {!scrub} locates (checksum
    mismatch, out-of-window version) and purges the offending
    entries. *)

type key = { src : Netpkt.Addr.t; label : int }

type entry = {
  actions : Policy.Action.t;
  next : Netpkt.Addr.t option;  (** next middlebox; [None] = this is the last *)
  final_dst : Netpkt.Addr.t option;
      (** original destination, present iff [next = None] *)
  version : int;
      (** configuration version whose weights installed this entry —
          live reconfiguration expires entries more than one version
          behind the installed configuration *)
  check : int64;
      (** checksum of the key and immutable payload, written at insert
          time; silent payload corruption leaves it stale *)
  mutable last_used : float;
}

type t

val create : ?timeout:float -> unit -> t
(** [timeout] defaults to infinity (no expiry). *)

val insert :
  t -> now:float -> ?version:int -> key ->
  actions:Policy.Action.t ->
  next:Netpkt.Addr.t option ->
  final_dst:Netpkt.Addr.t option ->
  unit
(** Raises [Invalid_argument] if [next]/[final_dst] are both set or
    both absent, or if the label is negative or exceeds
    [Netpkt.Header.max_label] (such an entry could never match a real
    packet's 21-bit label field, so accepting it would hide an
    encoding bug).  [version] defaults to 0 (static configuration). *)

val lookup : t -> now:float -> key -> entry option
(** Refreshes [last_used] on hit; an entry idle past the timeout is
    dropped and reported absent. *)

val find : t -> now:float -> src:Netpkt.Addr.t -> label:int -> entry option
(** {!lookup} with the key fields passed flat — the per-packet entry
    point, which builds no key record. *)

val size : t -> int

val length : t -> int
(** Alias of {!size} (digest and sweep code reads more naturally). *)

val iter : (key -> entry -> unit) -> t -> unit
(** Apply to every live entry, in insertion order.  The callback
    must not mutate the table. *)

val remove : t -> key -> unit

val purge : t -> now:float -> int
(** Evict every expired entry; returns how many were dropped. *)

val purge_versions_below : t -> version:int -> int
(** Evict every entry whose [version] is below the given floor;
    returns how many were dropped.  Called when a device installs a
    new configuration version: only the adjacent (previous) version's
    entries stay staged, so flows admitted two or more versions ago
    fall back to path re-establishment instead of following weights
    the verifier never certified against the installed mix. *)

val digest : t -> int64
(** The incrementally maintained digest.  Empty table = [0L]. *)

val recompute_digest : t -> int64
(** Walk the live entries and fold their actual payload hashes.
    Equal to {!digest} iff no unsafe mutation happened since the last
    {!scrub} (up to a 2{^-64} XOR collision). *)

val entry_hash :
  key ->
  actions:Policy.Action.t ->
  next:Netpkt.Addr.t option ->
  final_dst:Netpkt.Addr.t option ->
  version:int ->
  int64
(** The per-entry hash the digest folds; exposed for tests. *)

val unsafe_corrupt : t -> key -> redirect:Netpkt.Addr.t -> bool
(** Fault injection: silently rewrite the entry's steering field
    ([next] if present, else [final_dst]) to [redirect], leaving
    checksum and digest untouched.  [false] if the key is absent. *)

val unsafe_drop : t -> key -> bool
(** Fault injection: silently remove the entry, leaving the digest
    untouched.  [false] if the key is absent. *)

val unsafe_resurrect : t -> key -> entry -> bool
(** Fault injection: silently re-install a previously purged entry
    verbatim (its checksum still validates but its version is stale),
    leaving the digest untouched.  [false] if the key is occupied. *)

val scrub : t -> version_floor:int -> key list
(** Locate and purge every entry whose stored checksum disagrees with
    its actual payload hash or whose version is below [version_floor],
    then rebase the incremental digest to the recomputed one (so a
    silently dropped entry's ghost contribution is also cleared).
    Returns the purged keys. *)
