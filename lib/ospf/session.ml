type t = {
  n : int;
  routers : Router.t array;
  engine : Dess.Engine.t;
  link_delay : float;
  failed : (int * int, unit) Hashtbl.t; (* key (u<v) *)
  recosted : (int * int, float) Hashtbl.t; (* key (u<v), current cost *)
  mutable message_count : int;
  original : Netgraph.Graph.t;
}

let key u v = (min u v, max u v)

(* Flood [lsa] outward from [node] over the CURRENT adjacencies. *)
let rec flood t node ~except lsa =
  List.iter
    (fun (nbr, _) ->
      if nbr <> except then begin
        t.message_count <- t.message_count + 1;
        ignore
          (Dess.Engine.schedule t.engine ~delay:t.link_delay (fun _ ->
               deliver t nbr ~from:node lsa))
      end)
    (Router.neighbors t.routers.(node))

and deliver t node ~from lsa =
  if Router.install t.routers.(node) lsa then flood t node ~except:from lsa

let start ?(link_delay = 1.0) ?(jitter_seed = 7) topo =
  let g = topo.Netgraph.Topology.graph in
  let n = Netgraph.Graph.node_count g in
  let rng = Stdx.Rng.create jitter_seed in
  let routers =
    Array.init n (fun i ->
        let neighbors =
          List.map
            (fun { Netgraph.Graph.dst; cost } -> (dst, cost))
            (Netgraph.Graph.neighbors g i)
        in
        Router.create ~id:i ~neighbors)
  in
  let t =
    {
      n;
      routers;
      engine = Dess.Engine.create ();
      link_delay;
      failed = Hashtbl.create 16;
      recosted = Hashtbl.create 16;
      message_count = 0;
      original = g;
    }
  in
  for i = 0 to n - 1 do
    let jitter = Stdx.Rng.float rng 0.5 in
    ignore
      (Dess.Engine.schedule t.engine ~delay:jitter (fun _ ->
           let lsa = Router.originate t.routers.(i) in
           flood t i ~except:i lsa))
  done;
  Dess.Engine.run t.engine;
  t

let link_is_failed t u v = Hashtbl.mem t.failed (key u v)

(* Both ends re-originate their changed adjacency and flood; the
   session then runs to quiescence. *)
let reconverge t u v =
  List.iter
    (fun endpoint ->
      let lsa = Router.originate t.routers.(endpoint) in
      flood t endpoint ~except:endpoint lsa)
    [ u; v ];
  Dess.Engine.run t.engine

let fail_link t u v =
  if u < 0 || u >= t.n || v < 0 || v >= t.n then
    invalid_arg "Session.fail_link: node out of range";
  if link_is_failed t u v then invalid_arg "Session.fail_link: already failed";
  if not (List.mem_assoc v (Router.neighbors t.routers.(u))) then
    invalid_arg "Session.fail_link: no such link";
  Hashtbl.replace t.failed (key u v) ();
  Router.remove_neighbor t.routers.(u) v;
  Router.remove_neighbor t.routers.(v) u;
  (* Both ends detect the loss and advertise their shrunken adjacency. *)
  reconverge t u v

let recover_link t u v =
  if u < 0 || u >= t.n || v < 0 || v >= t.n then
    invalid_arg "Session.recover_link: node out of range";
  if not (link_is_failed t u v) then
    invalid_arg "Session.recover_link: link is not failed";
  Hashtbl.remove t.failed (key u v);
  (* The link comes back at its last advertised cost: a recost made
     before the failure survives it. *)
  let cost =
    match Hashtbl.find_opt t.recosted (key u v) with
    | Some c -> c
    | None -> (
      match Netgraph.Graph.cost t.original u v with
      | Some c -> c
      | None -> assert false (* only ever failed via fail_link *))
  in
  Router.add_neighbor t.routers.(u) v cost;
  Router.add_neighbor t.routers.(v) u cost;
  reconverge t u v

let change_cost t u v cost =
  if u < 0 || u >= t.n || v < 0 || v >= t.n then
    invalid_arg "Session.change_cost: node out of range";
  if cost <= 0.0 then invalid_arg "Session.change_cost: non-positive cost";
  if not (List.mem_assoc v (Router.neighbors t.routers.(u))) then
    invalid_arg "Session.change_cost: no such link";
  Hashtbl.replace t.recosted (key u v) cost;
  List.iter
    (fun (endpoint, nbr) ->
      Router.remove_neighbor t.routers.(endpoint) nbr;
      Router.add_neighbor t.routers.(endpoint) nbr cost)
    [ (u, v); (v, u) ];
  reconverge t u v

let tables t = Array.map (fun r -> Router.spf r ~node_count:t.n) t.routers

let surviving_graph t =
  let g = Netgraph.Graph.create t.n in
  List.iter
    (fun (u, v, cost) ->
      if not (link_is_failed t u v) then begin
        let cost =
          Option.value ~default:cost (Hashtbl.find_opt t.recosted (key u v))
        in
        Netgraph.Graph.add_edge g u v cost
      end)
    (Netgraph.Graph.edges t.original);
  g

let messages t = t.message_count
