lib/packet/addr.mli:
