lib/sim/epochsim.ml: Array Flowsim List Sdm Workload
