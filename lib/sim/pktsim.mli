(** Packet-level network simulator on the discrete-event engine.

    The faithful (and slower) counterpart of {!Flowsim}: every packet
    of every flow is injected at its source proxy, classified against
    the proxy's policy table (flow cache first, Sec. III.D), tunnelled
    IP-over-IP middlebox to middlebox, optionally upgraded to label
    switching after the chain's last middlebox confirms (Sec. III.E),
    and routed through the routers' OSPF tables, which know nothing
    about policies.

    Router transit is {e hop fast-forwarded}: between two policy
    decision points (proxy, middlebox, destination subnet) forwarding
    is deterministic under fixed tables, so the simulator walks the
    per-hop tables inline and schedules a single event per path
    segment instead of one per router hop.  Hop and fragment counters,
    ECMP hash choices, and every timestamp are identical to per-hop
    execution; only {!stats.events_processed} shrinks.  Per-event
    fidelity is kept exactly where state evolves over time — middlebox
    FIFO queueing, label/cache soft-state expiry.

    Used by integration tests (per-middlebox loads must equal
    {!Flowsim.run}'s), by the cache and fragmentation ablations, and
    by the label-switching example.  Keep workloads at packet-level
    scale (≤ ~100k packets); the figure-scale experiments use
    {!Flowsim}. *)

type table_source =
  | Oracle           (** global Dijkstra (default) *)
  | Distributed_ospf (** tables from link-state flooding ([Ospf.Protocol]) *)
  | Distributed_dvr  (** tables from distance-vector exchange ([Dvr.Protocol]) *)

(** Which software classifier backs the per-entity policy tables.  All
    three implement identical first-match (lowest rule id) semantics —
    property tests enforce the equivalence — so every statistic of a
    run is invariant to this knob; only classification cost differs,
    which is what the classifier benchmark measures. *)
type classifier =
  | Trie     (** hierarchical source/destination prefix trie (default) *)
  | Dectree  (** HiCuts-style decision tree ({!Policy.Dectree}) *)
  | Linear   (** linear scan of the rule list — the small-table baseline *)

(** Live control plane (Sec. III.A-III.C run in-line).

    When {!config.live} is set, the controller becomes a simulated
    entity at an attachment router: at epoch boundaries it re-solves
    the placement from the traffic volumes measured since the run
    began, and one detection delay after every middlebox transition it
    re-optimizes around the believed-failed set.  Each published
    configuration carries a monotonically increasing {e version} and
    is pushed hop-by-hop to every proxy and middlebox over the lossy
    control channel, with per-device acknowledgement and
    exponential-backoff retries, a periodic reconciliation loop that
    re-pushes to devices stuck on stale versions, and graceful
    degradation to the last-known-good configuration when the
    controller is partitioned from a device or the new configuration
    fails verification.

    Mixed-version safety: a new version is published only after
    {!Sdm.Verify.check_window} certifies every reachable mix of the
    two adjacent versions.  Devices stage at most {installed-1,
    installed}; flows stay sticky to the version that admitted them
    (clamped into the staged window), and label-table entries more
    than one version old are purged on install, so an in-flight flow
    crossing an update boundary re-establishes its path instead of
    stranding.

    Replication ([replicas > 1]): the controller becomes [replicas]
    replicas at distinct attachment routers (replica 0 at
    [controller_router]); the lowest-id live replica leads.  Every
    candidate configuration runs a two-phase {!Quorum} round over the
    same lossy control channel — propose out, votes back, each leg
    with the capped-backoff retry ladder — and is published only once
    a quorum accepted it.  A leader crash triggers a deterministic
    re-election one detection delay later; a minority-side partition
    abandons its round and degrades to last-known-good without ever
    publishing.  [replicas = 1] (the default) commits synchronously
    with zero quorum traffic and is bit-identical to the
    pre-replication control plane. *)
type live_config = {
  epoch_interval : float;
      (** period of measurement-driven re-optimizations (default 25.0);
          epochs are scheduled across the traffic window *)
  reconcile_interval : float;
      (** period of the re-push loop for stale devices (default 5.0) *)
  push_backoff : float;
      (** initial retry delay of a config push; doubles per attempt
          (default 2.0) *)
  push_backoff_cap : float;
      (** ceiling on the exponential retry delay, shared by every
          control-plane chain (pushes, proposals, commit notices).
          Must be at least [push_backoff]; [infinity] leaves the
          ladder uncapped.  Default 120.0 — above the last rung of the
          default ladder, so defaults never clip. *)
  push_max_retries : int;
      (** retries per push chain before the reconciliation loop
          becomes the backstop (default 6) *)
  controller_router : int option;
      (** attachment router; default first gateway, else first core
          (same convention as {!Controlplane.price}) *)
  replicas : int;
      (** controller replicas (default 1 = the unreplicated control
          plane) *)
  quorum : Quorum.family;
      (** what counts as a quorum of the replicas (default
          {!Quorum.Majority}) *)
  replica_routers : int list option;
      (** attachment router per replica; default
          {!Controlplane.replica_routers} placement from the
          controller's router.  Must list [replicas] distinct
          routers. *)
  sweep_period : float option;
      (** anti-entropy period: every [p] time units the live leader
          digest-audits each device's soft state over the lossy
          control channel — a digest query triggers a local scrub of
          silently corrupted entries, and the version report exposes
          silently lost config installs (which the ack-driven
          reconciliation loop cannot see) for a targeted re-push.
          [None] (the default) disables the sweep entirely: no events,
          no loss draws, bit-identical to a build without it.  The
          sweep bounds corruption repair at [2 * sweep_period]
          (one period to be visited, one for the retry ladder) — the
          deadline the audit's Repair invariant enforces. *)
  warm_start : bool;
      (** thread the previous plan's simplex basis through every
          in-run re-optimization: candidate sets are patched from the
          ranked lists instead of recomputed, and the LP re-runs phase
          2 only when its layout held ({!Sdm.Controller.reoptimize}
          with [use_warm]).  Warm plans are optima the cold path would
          also reach; only the pivot counters change.  [false] (the
          default) runs the cold path, bit-identical to builds without
          warm-start support. *)
}

val default_live : live_config

val push_backoff_delay : live_config -> attempt:int -> float
(** The retry ladder every control-plane chain climbs:
    [min (push_backoff * 2^attempt) push_backoff_cap]. *)

type config = {
  label_switching : bool; (** default true *)
  mtu : int;              (** default 1500 *)
  link_delay : float;     (** per hop, default 0.1 *)
  packet_interval : float;(** spacing within a flow, default 1.0 *)
  start_window : float;   (** flow start times uniform in [0, w), default 50. *)
  cache_timeout : float;  (** flow-cache soft-state timeout, default 1e9 *)
  seed : int;             (** start-time jitter seed, default 99 *)
  table_source : table_source;
      (** where the routers' forwarding tables come from.  Middlebox
          loads are invariant to this (enforcement decisions do not
          depend on routes); only paths/latencies can differ on
          equal-cost ties. *)
  classifier : classifier;
      (** which software classifier backs the proxy/middlebox policy
          tables.  Match semantics are identical across all three, so
          every statistic is invariant; default [Trie]. *)
  service_rate : float;
      (** middlebox processing capacity in packets per time unit;
          packets queue FIFO and wait when a box is busy, so an
          overloaded middlebox shows up as latency.  Default
          [infinity] = processing is instantaneous (the load-counting
          semantics of the figures). *)
  label_timeout : float;
      (** soft-state timeout of middlebox label tables.  When an entry
          expires mid-flow, the packet that hits the stale path is
          lost (its original destination is unknown downstream), a
          teardown notification travels back to the proxy, and the
          flow falls back to IP-over-IP until re-established.  Default
          [infinity]. *)
  wp_cache_hit_ratio : float;
      (** Figure 3's web-proxy semantics: this fraction of flows (a
          per-flow sticky draw) find their page cached at the WP, which
          answers directly — the packet skips the rest of the chain and
          the origin server.  Default 0.0 (WP is a pure pass-through,
          the evaluation's setting). *)
  cache_capacity : int option;
      (** bound on every proxy/middlebox flow cache (hardware hash
          tables are finite); LRU eviction past the bound.  Default
          unbounded. *)
  ecmp : bool;
      (** equal-cost multipath: routers hash flows over every
          shortest-path next hop instead of the single deterministic
          one.  Overrides [table_source] (ECMP sets come from the
          global oracle).  Middlebox loads are invariant; only paths
          vary.  Default false. *)
  faults : Fault.Schedule.t option;
      (** in-run fault injection: middlebox crash/recovery, link
          fail/restore (routing then reconverges through a live
          {!Ospf.Session} mid-run), controller-replica crash/recovery
          (replicated live control plane), per-link data-packet loss,
          and control-packet loss.  [None] (the default) leaves every
          fault path disabled — no detector, no loss RNG — so a
          fault-free run is bit-identical to one on a build without
          this machinery. *)
  detection_delay : float;
      (** how long after a crash/recovery the failure detector's view
          flips — the heartbeat timeout.  During the window after a
          crash, traffic is still steered into the dead box and lost;
          after it, local fast failover (Sec. III.D) routes around.
          Default 10.0. *)
  failover : bool;
      (** when false, entities ignore the failure detector and keep
          using the static configuration — the "no failover" baseline
          of ABL-CHAOS.  Default true. *)
  ctrl_retry_timeout : float;
      (** retransmission timer for label-establishment / teardown
          control packets lost to [control_loss].  Default 5.0. *)
  ctrl_max_retries : int;
      (** retransmissions after the initial attempt before the sender
          gives up (receivers are idempotent).  Default 3. *)
  live : live_config option;
      (** in-run reconfiguration.  [None] (the default) keeps the
          configuration static for the whole run — bit-identical to a
          build without the live control plane. *)
  audit : bool;
      (** online invariant auditing ({!Audit.Checker}): the run emits
          a structured event per admission, steering decision,
          enforcement, terminal fate and table mutation, and
          {!stats.audit_report} carries the checked result.  Emission
          is a pure side-channel — no randomness, no scheduled work —
          so every other statistic is bit-identical to an unaudited
          run.  Default false. *)
  debug_bypass_chain : int option;
      (** test-only corruption hook: [Some n] makes every n-th
          admitted packet of an enforced flow skip its middlebox chain
          and travel straight to the destination — the escape the
          audit's chain invariant exists to catch.  Default [None]
          (never set this outside tests). *)
  shards : int;
      (** parallelism for the shardable setup phases — the per-entity
          policy-trie builds and (under the [Oracle] substrate) the
          per-source routing tables, all pure functions of the
          immutable controller and topology, evaluated on the domain
          pool when [shards > 1].  The event loop itself is a
          sequential discrete-event simulation and is not sharded, so
          every statistic is bit-identical for every value (positional
          {!Stdx.Domain_pool.map} results).  Default 1. *)
}

val default_config : config

type stats = {
  loads : float array;            (** packets processed per middlebox id *)
  injected_packets : int;
  delivered_packets : int;
  dropped_packets : int;          (** TTL expiry / lookup failure; expect 0 *)
  control_packets : int;          (** label-switching confirmations *)
  multi_field_lookups : int;      (** policy-table lookups at proxies+middleboxes *)
  cache_hits : int;
  cache_negative_hits : int;
  tunneled_packets : int;         (** tunnel legs traversed IP-over-IP *)
  label_switched_packets : int;   (** legs traversed by label switching *)
  fragments_created : int;        (** extra fragments beyond original packets *)
  router_hops : int;
  sim_time : float;
  latency_mean : float;           (** end-to-end delivery latency; 0.0 if none *)
  latency_p50 : float;
  latency_p99 : float;
  label_misses : int;    (** label-switched packets that hit an expired entry *)
  teardowns : int;       (** teardown notifications delivered to proxies *)
  wp_cache_served : int; (** packets answered from a web proxy's cache *)
  cache_evictions : int; (** capacity-forced flow-cache evictions, all nodes *)
  events_scheduled : int;
      (** engine events created over the run — with hop fast-forwarding
          this stays well below one per router hop *)
  events_processed : int; (** engine events fired over the run *)
  policy_violations : int;
      (** packets of enforced flows that escaped their chain: steered
          into a crashed middlebox, or dropped because every candidate
          for some function was believed dead.  0 without faults. *)
  fault_dropped : int;
      (** packets lost to injected faults (dead-box arrivals plus
          per-link loss); a subset of [dropped_packets] *)
  control_retries : int;
      (** control-packet retransmissions triggered by [control_loss] *)
  control_lost : int; (** control-packet transmissions lost to faults *)
  last_violation_time : float;
      (** simulated time of the last policy violation (0.0 if none) —
          [last_violation_time - crash time] is ABL-CHAOS's recovery
          time *)
  (* Live control plane — all zero (and all-zero arrays) when
     [config.live = None]. *)
  config_pushes : int;
      (** config-push transmissions sent, retries included *)
  config_acks : int;  (** install acknowledgements the controller received *)
  config_lost : int;  (** config/ack transmissions lost to [control_loss] *)
  config_bytes : int;
      (** configuration bytes put on the wire ({!Controlplane}'s byte
          model, priced per transmission) *)
  reoptimizations : int; (** configuration versions published *)
  config_degraded : int;
      (** degradations to last-known-good: re-optimizations vetoed by
          the verifier or the LP, and pushes skipped because the
          controller was partitioned from the device *)
  final_config_version : int; (** highest version published *)
  stale_devices : int;
      (** devices still below the final version when the run ended *)
  entity_control_retries : int array;
      (** per-device control retransmissions (proxies first, then
          middleboxes): label control attributed to the sending
          middlebox, config pushes to the target device *)
  entity_control_lost : int array;
      (** per-device control transmissions lost, same attribution *)
  entity_config_version : int array;
      (** per-device installed version at run end — the lag behind
          [final_config_version] attributes update stalls *)
  (* Replicated control plane — with [replicas = 1] the round counters
     still tick (the single replica plays a one-acceptor quorum and
     commits synchronously) but no quorum message ever hits the wire,
     so [quorum_msgs], [quorum_lost] and [leader_changes] stay 0. *)
  quorum_rounds : int;  (** propose/accept/commit rounds started *)
  quorum_commits : int; (** rounds that reached quorum and committed *)
  quorum_aborts : int;
      (** rounds abandoned: quorum unreachable (partition, crashes,
          retries exhausted) or superseded by a fresher candidate *)
  quorum_msgs : int;
      (** proposal / vote / commit-notice transmissions, retries
          included *)
  quorum_lost : int; (** of those, lost to the control channel *)
  leader_changes : int; (** deterministic re-elections after leader crashes *)
  replica_versions : int array;
      (** per-replica highest committed version at run end (empty when
          [live = None]) — divergence from [final_config_version]
          shows which replicas a partition left behind *)
  (* Silent state corruption and anti-entropy repair.  All zero unless
     the fault schedule carries corruption events (injection counters)
     or [live.sweep_period] is set (sweep counters). *)
  corruptions_injected : int;
      (** corruption events that actually mutated state (an event
          aimed at an empty table, a crashed box, or a version-0
          device no-ops and is not counted) *)
  corruptions_manifested : int;
      (** injected corruptions whose state influenced the data plane
          at least once before repair (mis-steered / bypassed packets,
          lost-entry drops, regressed-weight decisions) *)
  corruptions_detected : int;
      (** digest mismatches the sweep found (one per device visit that
          scrubbed) *)
  corruptions_repaired : int;
      (** injected corruptions retired: scrub-purged, naturally
          overwritten/rebased, crash-wiped, or config re-installed *)
  sweep_rounds : int; (** anti-entropy rounds the live leader ran *)
  sweep_msgs : int;   (** sweep queries + reports sent, retries included *)
  sweep_lost : int;   (** of those, lost to the control channel *)
  sweep_bytes : int;  (** sweep wire overhead — the repair-traffic cost *)
  repair_window_mean : float;
      (** mean inject-to-repair time over repaired corruptions (0 when
          none) *)
  repair_window_max : float; (** worst inject-to-repair window *)
  reopt_pivots : int;
      (** simplex pivots across every in-run re-optimization (0 when
          [live = None]) *)
  reopt_phase1_pivots : int;
      (** of those, phase-1 and drive-out pivots — cold-path work a
          successful warm start skips entirely *)
  reopt_warm_used : int;
      (** re-solves the previous basis carried to optimality (0 unless
          [live.warm_start]) *)
  reopt_fallback : int;
      (** warm attempts that fell back to the cold two-phase path *)
  audit_report : Audit.Checker.report option;
      (** the invariant auditor's verdict; [None] unless
          {!config.audit} was set *)
}

val run :
  ?config:config -> controller:Sdm.Controller.t -> workload:Workload.t ->
  unit -> stats
