type t = {
  sketches : Stdx.Count_min.t array; (* per source proxy *)
  totals : float array;              (* exact per-proxy totals *)
  epsilon : float;
  n_proxies : int;
}

let create ?(epsilon = 0.001) ?(delta = 0.01) ~n_proxies () =
  {
    sketches = Array.init n_proxies (fun _ -> Stdx.Count_min.create ~epsilon ~delta ());
    totals = Array.make n_proxies 0.0;
    epsilon;
    n_proxies;
  }

let key ~dst ~rule = Stdx.Xhash.ints [ dst; rule ]

let add t ~src ~dst ~rule v =
  if src < 0 || src >= t.n_proxies then invalid_arg "Sketch.add: bad source proxy";
  Stdx.Count_min.add t.sketches.(src) (key ~dst ~rule) v;
  t.totals.(src) <- t.totals.(src) +. v

let memory_cells t =
  Array.fold_left
    (fun acc s -> acc + (Stdx.Count_min.width s * Stdx.Count_min.depth s))
    0 t.sketches

let to_measurement t ~rules =
  let m = Measurement.create () in
  Array.iteri
    (fun src sketch ->
      if t.totals.(src) > 0.0 then begin
        let floor_ = t.epsilon *. t.totals.(src) in
        List.iter
          (fun rule ->
            for dst = 0 to t.n_proxies - 1 do
              if dst <> src then begin
                let est =
                  Stdx.Count_min.estimate sketch (key ~dst ~rule:rule.Policy.Rule.id)
                in
                if est > floor_ then
                  Measurement.add m ~src ~dst ~rule:rule.Policy.Rule.id est
              end
            done)
          rules
      end)
    t.sketches;
  m

let of_workload_measurement ~exact ~n_proxies ~rules ?epsilon ?delta () =
  let t = create ?epsilon ?delta ~n_proxies () in
  List.iter
    (fun rule ->
      List.iter
        (fun (src, dst, v) -> add t ~src ~dst ~rule:rule.Policy.Rule.id v)
        (Measurement.pairs_for exact ~rule:rule.Policy.Rule.id))
    rules;
  t
