lib/policy/action.ml: Format List Stdlib String
