lib/ospf/lsa.ml: Format List
