type t = { src : Addr.t; dst : Addr.t; proto : int; sport : int; dport : int }

let make ~src ~dst ~proto ~sport ~dport =
  if proto < 0 || proto > 255 then invalid_arg "Flow.make: bad protocol";
  if sport < 0 || sport > 65535 || dport < 0 || dport > 65535 then
    invalid_arg "Flow.make: bad port";
  { src; dst; proto; sport; dport }

let compare = Stdlib.compare
let equal a b = compare a b = 0

let hash t = Stdx.Xhash.ints [ t.src; t.dst; t.proto; t.sport; t.dport ]

let hash_to_unit t = Stdx.Xhash.to_unit_interval (hash t)

let reverse t = { t with src = t.dst; dst = t.src; sport = t.dport; dport = t.sport }

let to_string t =
  Printf.sprintf "%s:%d>%s:%d/%d" (Addr.to_string t.src) t.sport
    (Addr.to_string t.dst) t.dport t.proto

let pp ppf t = Format.pp_print_string ppf (to_string t)

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash t = Int64.to_int (hash t) land max_int
end)
