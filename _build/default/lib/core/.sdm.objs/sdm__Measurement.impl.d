lib/core/measurement.ml: Hashtbl List Option
