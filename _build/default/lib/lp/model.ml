type var = int

type cmp = Le | Ge | Eq

type row = { terms : (float * var) list; cmp : cmp; rhs : float }

type t = {
  mutable names : string list; (* reversed *)
  mutable n : int;
  mutable rows : row list; (* reversed *)
  mutable m : int;
  mutable objective : (float * var) list;
}

type solution = { objective : float; values : float array }

type outcome = Optimal of solution | Infeasible | Unbounded

let create () = { names = []; n = 0; rows = []; m = 0; objective = [] }

let var t name =
  let id = t.n in
  t.n <- id + 1;
  t.names <- name :: t.names;
  id

let var_index v = v

let var_name t v =
  if v < 0 || v >= t.n then invalid_arg "Model.var_name: bad variable";
  List.nth t.names (t.n - 1 - v)

let num_vars t = t.n
let num_constraints t = t.m

let check_terms t terms =
  List.iter
    (fun (_, v) ->
      if v < 0 || v >= t.n then invalid_arg "Model: variable from another model")
    terms

(* Sum duplicate variables so each appears once per row. *)
let normalise terms =
  let tbl = Hashtbl.create (List.length terms) in
  List.iter
    (fun (c, v) ->
      let prev = Option.value ~default:0.0 (Hashtbl.find_opt tbl v) in
      Hashtbl.replace tbl v (prev +. c))
    terms;
  Hashtbl.fold (fun v c acc -> if c = 0.0 then acc else (c, v) :: acc) tbl []

let add_constraint t terms cmp rhs =
  check_terms t terms;
  t.rows <- { terms = normalise terms; cmp; rhs } :: t.rows;
  t.m <- t.m + 1

let set_objective t terms =
  check_terms t terms;
  t.objective <- normalise terms

let value sol v = sol.values.(v)

let solve t =
  let rows = List.rev t.rows in
  let dense_rows =
    List.map
      (fun { terms; cmp; rhs } ->
        let coefs = Array.make t.n 0.0 in
        List.iter (fun (c, v) -> coefs.(v) <- coefs.(v) +. c) terms;
        let sense =
          match cmp with Le -> Simplex.Le | Ge -> Simplex.Ge | Eq -> Simplex.Eq
        in
        (coefs, sense, rhs))
      rows
  in
  let cost = Array.make t.n 0.0 in
  List.iter (fun (c, v) -> cost.(v) <- cost.(v) +. c) t.objective;
  match Simplex.solve ~cost ~rows:(Array.of_list dense_rows) with
  | Simplex.Optimal values ->
    let objective =
      Array.fold_left ( +. ) 0.0 (Array.mapi (fun i v -> cost.(i) *. v) values)
    in
    Optimal { objective; values }
  | Simplex.Infeasible -> Infeasible
  | Simplex.Unbounded -> Unbounded

let pp_outcome ppf = function
  | Optimal { objective; _ } -> Format.fprintf ppf "optimal(%.6g)" objective
  | Infeasible -> Format.pp_print_string ppf "infeasible"
  | Unbounded -> Format.pp_print_string ppf "unbounded"
