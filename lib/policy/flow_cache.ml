type entry = {
  actions : Action.t option;
  rule_id : int;
  label : int option;
  cfg_version : int;
  check : int64;
  mutable ls_ready : bool;
  mutable last_used : float;
}

type stats = {
  mutable hits : int;
  mutable negative_hits : int;
  mutable misses : int;
  mutable expirations : int;
  mutable evictions : int;
}

(* Keyed on the packed 104-bit flow identity ([Flow.key]/[key2]), so
   the per-packet lookup probes parallel int arrays and allocates
   nothing.  Iteration is insertion order (a property of the
   operation sequence, not of hash layout) — what the corruption
   machinery and the scrub rely on for seeded reproducibility. *)
type t = {
  table : entry Stdx.Flat_table.t;
  timeout : float;
  negative_timeout : float;
  capacity : int option;
  stats : stats;
  mutable digest : int64;
}

let create ?(timeout = 60.0) ?negative_timeout ?capacity ?expected () =
  if timeout <= 0.0 then invalid_arg "Flow_cache.create: timeout must be positive";
  let negative_timeout =
    match negative_timeout with
    | None -> timeout
    | Some nt ->
      if nt <= 0.0 then
        invalid_arg "Flow_cache.create: negative_timeout must be positive";
      nt
  in
  (match capacity with
  | Some c when c < 1 -> invalid_arg "Flow_cache.create: capacity must be >= 1"
  | _ -> ());
  (match expected with
  | Some e when e < 0 -> invalid_arg "Flow_cache.create: expected must be >= 0"
  | _ -> ());
  (* Initial bucket count: the caller's expected population, clamped
     by the capacity bound when there is one (a bounded cache can
     never hold more than [capacity] live entries). *)
  let hint =
    let e = match expected with None -> 256 | Some e -> max 16 e in
    match capacity with None -> e | Some c -> min e (max 16 c)
  in
  {
    table = Stdx.Flat_table.create ~initial:hint ();
    timeout;
    negative_timeout;
    capacity;
    stats = { hits = 0; negative_hits = 0; misses = 0; expirations = 0; evictions = 0 };
    digest = 0L;
  }

(* Hash of the flow identity and the entry's immutable payload.
   [ls_ready] and [last_used] are legitimately mutated in place and
   are excluded, so neither refreshes nor the label-switching control
   packet perturb the digest. *)
let entry_hash flow ~actions ~rule_id ~label ~cfg_version =
  let h =
    Stdx.Xhash.fold_int Stdx.Xhash.fnv_offset
      (Int64.to_int (Netpkt.Flow.hash flow))
  in
  let h =
    match actions with
    | None -> Stdx.Xhash.fold_int h (-2)
    | Some acts ->
      List.fold_left
        (fun h nf ->
          Stdx.Xhash.fold_int h
            (Int64.to_int (Stdx.Xhash.string (Action.nf_to_string nf))))
        (Stdx.Xhash.fold_int h 2)
        acts
  in
  let h = Stdx.Xhash.fold_int h rule_id in
  let h =
    match label with
    | None -> Stdx.Xhash.fold_int h (-1)
    | Some l -> Stdx.Xhash.fold_int (Stdx.Xhash.fold_int h 1) l
  in
  Stdx.Xhash.fmix64 (Stdx.Xhash.fold_int h cfg_version)

let entry_hash_packed k1 k2 (e : entry) =
  entry_hash (Netpkt.Flow.of_key k1 k2) ~actions:e.actions ~rule_id:e.rule_id
    ~label:e.label ~cfg_version:e.cfg_version

(* Legitimate mutations XOR the *stored* checksum in or out, so an
   insert/remove pair cancels exactly even if the payload was silently
   poisoned in between; only the unsafe_* faults skip this. *)
let forget t entry = t.digest <- Int64.logxor t.digest entry.check

let remember t entry = t.digest <- Int64.logxor t.digest entry.check

(* Negative entries (no policy matched) live on their own, typically
   shorter, TTL: a bogus negative entry must not shadow a real policy
   match — or pin a cache slot — any longer than that. *)
let ttl t entry =
  match entry.actions with None -> t.negative_timeout | Some _ -> t.timeout

let drop t k1 k2 entry =
  forget t entry;
  Stdx.Flat_table.remove t.table k1 k2

let lookup t ~now flow =
  let k1 = Netpkt.Flow.key flow and k2 = Netpkt.Flow.key2 flow in
  let d = Stdx.Flat_table.find_slot t.table k1 k2 in
  if d < 0 then begin
    t.stats.misses <- t.stats.misses + 1;
    None
  end
  else begin
    let entry = Stdx.Flat_table.value t.table d in
    if now -. entry.last_used > ttl t entry then begin
      drop t k1 k2 entry;
      t.stats.expirations <- t.stats.expirations + 1;
      t.stats.misses <- t.stats.misses + 1;
      None
    end
    else begin
      entry.last_used <- now;
      (match entry.actions with
      | None -> t.stats.negative_hits <- t.stats.negative_hits + 1
      | Some _ -> t.stats.hits <- t.stats.hits + 1);
      Some entry
    end
  end

(* Bounded caches behave like a hardware hash table: when full, expired
   entries go first (each against its own TTL), then the
   least-recently-used live one (first-inserted wins age ties). *)
let make_room t ~now flow =
  match t.capacity with
  | None -> ()
  | Some cap ->
    if
      Stdx.Flat_table.length t.table >= cap
      && not
           (Stdx.Flat_table.mem t.table (Netpkt.Flow.key flow)
              (Netpkt.Flow.key2 flow))
    then begin
      let expired =
        Stdx.Flat_table.fold
          (fun k1 k2 e acc ->
            if now -. e.last_used > ttl t e then (k1, k2, e) :: acc else acc)
          t.table []
      in
      List.iter (fun (k1, k2, e) -> drop t k1 k2 e) expired;
      t.stats.expirations <- t.stats.expirations + List.length expired;
      while Stdx.Flat_table.length t.table >= cap do
        let victim =
          Stdx.Flat_table.fold
            (fun k1 k2 e acc ->
              match acc with
              | Some (_, _, oldest, _) when oldest <= e.last_used -> acc
              | _ -> Some (k1, k2, e.last_used, e))
            t.table None
        in
        match victim with
        | Some (k1, k2, _, e) ->
          drop t k1 k2 e;
          t.stats.evictions <- t.stats.evictions + 1
        | None -> assert false (* table non-empty while >= cap >= 1 *)
      done
    end

let stash t flow entry =
  let k1 = Netpkt.Flow.key flow and k2 = Netpkt.Flow.key2 flow in
  (match Stdx.Flat_table.find t.table k1 k2 with
  | Some old -> forget t old
  | None -> ());
  remember t entry;
  Stdx.Flat_table.replace t.table k1 k2 entry

let insert t ~now flow ~rule_id ~actions ?label ?(cfg_version = 0) () =
  make_room t ~now flow;
  let check =
    entry_hash flow ~actions:(Some actions) ~rule_id ~label ~cfg_version
  in
  let entry =
    { actions = Some actions; rule_id; label; cfg_version; check;
      ls_ready = false; last_used = now }
  in
  stash t flow entry;
  entry

let insert_negative t ~now flow =
  make_room t ~now flow;
  let check =
    entry_hash flow ~actions:None ~rule_id:(-1) ~label:None ~cfg_version:0
  in
  let entry =
    { actions = None; rule_id = -1; label = None; cfg_version = 0; check;
      ls_ready = false; last_used = now }
  in
  stash t flow entry;
  entry

let mark_ls_ready t flow =
  match
    Stdx.Flat_table.find t.table (Netpkt.Flow.key flow) (Netpkt.Flow.key2 flow)
  with
  | Some ({ actions = Some _; _ } as entry) ->
    entry.ls_ready <- true;
    true
  | Some { actions = None; _ } | None -> false

let purge t ~now =
  let expired =
    Stdx.Flat_table.fold
      (fun k1 k2 entry acc ->
        if now -. entry.last_used > ttl t entry then (k1, k2, entry) :: acc
        else acc)
      t.table []
  in
  List.iter (fun (k1, k2, entry) -> drop t k1 k2 entry) expired;
  let n = List.length expired in
  t.stats.expirations <- t.stats.expirations + n;
  n

let size t = Stdx.Flat_table.length t.table

let iter f t =
  Stdx.Flat_table.iter (fun k1 k2 e -> f (Netpkt.Flow.of_key k1 k2) e) t.table

let stats t = t.stats
let timeout t = t.timeout
let negative_timeout t = t.negative_timeout

let digest t = t.digest

let recompute_digest t =
  Stdx.Flat_table.fold
    (fun k1 k2 e acc -> Int64.logxor acc (entry_hash_packed k1 k2 e))
    t.table 0L

(* Fault-injection back doors: poison an entry the way a bit flip
   would — without maintaining checksum or digest — so the
   anti-entropy sweep has something real to find. *)

let unsafe_poison_negative t flow =
  let k1 = Netpkt.Flow.key flow and k2 = Netpkt.Flow.key2 flow in
  match Stdx.Flat_table.find t.table k1 k2 with
  | Some ({ actions = Some _; _ } as e) ->
    Stdx.Flat_table.replace t.table k1 k2 { e with actions = None };
    true
  | Some { actions = None; _ } | None -> false

let unsafe_poison_actions t flow ~actions =
  let k1 = Netpkt.Flow.key flow and k2 = Netpkt.Flow.key2 flow in
  match Stdx.Flat_table.find t.table k1 k2 with
  | None -> false
  | Some e ->
    Stdx.Flat_table.replace t.table k1 k2 { e with actions = Some actions };
    true

let scrub t =
  let bad =
    Stdx.Flat_table.fold
      (fun k1 k2 e acc ->
        if not (Int64.equal (entry_hash_packed k1 k2 e) e.check) then
          (k1, k2) :: acc
        else acc)
      t.table []
  in
  List.iter (fun (k1, k2) -> Stdx.Flat_table.remove t.table k1 k2) bad;
  t.digest <- recompute_digest t;
  List.rev_map (fun (k1, k2) -> Netpkt.Flow.of_key k1 k2) bad
