(** Graphviz export of topologies.

    [sdmctl topo --dot] renders the campus or Waxman network (and a
    deployment's middlebox/proxy attachments, supplied as extra
    labels) for inspection with [dot -Tsvg]. *)

val topology :
  ?extra_labels:(int * string) list ->
  Format.formatter ->
  Topology.t ->
  unit
(** Emit an undirected [graph { ... }].  Gateways render as diamonds,
    cores as circles, edge routers as boxes; [extra_labels] appends
    text to a router's label (e.g. ["FW0, IDS3"] for attachments). *)
