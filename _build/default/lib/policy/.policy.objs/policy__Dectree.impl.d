lib/policy/dectree.ml: Array Descriptor List Netpkt Rule
