(** Policies ("rules") and ordered policy lists.

    A rule pairs a traffic descriptor with an action list.  Policy
    lists are ordered: "when there are multiple policy matches, we
    apply the first matching policy."  Rules carry a priority index
    equal to their position in the network-wide list so that subsets
    distributed to proxies/middleboxes preserve the global order. *)

type t = {
  id : int;            (** position in the network-wide list; lower wins *)
  descriptor : Descriptor.t;
  actions : Action.t;
}

val make : id:int -> descriptor:Descriptor.t -> actions:Action.t -> t

val index : Descriptor.t list -> Action.t list -> t list
(** Zip descriptors and action lists into an ordered rule list.
    Raises [Invalid_argument] on length mismatch. *)

val first_match : t list -> Netpkt.Flow.t -> t option
(** Linear first-match scan — the reference matcher. *)

val relevant_to_subnet : t list -> Netpkt.Addr.Prefix.t -> t list
(** The controller's [P_x] for a policy proxy: rules whose descriptor
    can match traffic sourced in the proxy's subnet. *)

val relevant_to_function : t list -> Action.nf -> t list
(** The controller's [P_x] for a middlebox: rules whose action list
    contains a function the middlebox implements. *)

val table_one : Netpkt.Addr.Prefix.t -> t list
(** The six example policies of Table I, instantiated for an
    enterprise prefix ("subnet a"). *)

val pp : Format.formatter -> t -> unit
