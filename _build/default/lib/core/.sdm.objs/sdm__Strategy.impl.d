lib/core/strategy.ml: Array Candidate Deployment List Mbox Netpkt Policy Printf Selector Seq Weights Weights_sd
