examples/waxman_scale.mli:
