(** Heartbeat-style failure detector with a fixed detection delay.

    The detector tracks the ground-truth up/down state of a population
    of middleboxes.  Observers (the proxies and middleboxes doing local
    fast failover, Sec. III.D) see each transition only [delay] time
    units after it happened — the time heartbeats take to be missed —
    so for [delay] after a crash the dead box is still believed alive
    (packets steered to it are lost), and for [delay] after a recovery
    the live box is still avoided (safe, merely suboptimal).

    The model is eventually-perfect: no false suspicions, and every
    transition is detected exactly [delay] later.  Queries must come
    with the current simulated time; state changes are made by the
    fault-schedule executor. *)

type t

val create : n:int -> delay:float -> t
(** [n] middleboxes, all initially up and believed up.  Raises
    [Invalid_argument] on a negative [n], or on a [delay] that is
    negative or non-finite (NaN and +infinity would freeze the
    believed view at the pre-transition state forever). *)

val crash : t -> now:float -> int -> unit
(** Ground truth: the box goes down at [now].  Raises
    [Invalid_argument] if it is already down. *)

val recover : t -> now:float -> int -> unit
(** Ground truth: the box comes back at [now].  Raises
    [Invalid_argument] if it is already up. *)

val actually_up : t -> int -> bool
(** Ground truth, regardless of detection delay. *)

val believed_alive : t -> now:float -> int -> bool
(** The observers' view at time [now]: the current state if the last
    transition is at least [delay] old, the previous state otherwise. *)

val believed_failed : t -> now:float -> int list
(** The ids believed down at [now], ascending — the [failed] list a
    live controller hands to {!Sdm.Controller.configure} when it
    re-optimizes on a detected failure. *)

val belief_signature : t -> now:float -> int64
(** Deterministic FNV-1a signature of {!believed_failed} at [now];
    [0L] when every middlebox is believed up.  Two times with the same
    believed-failed set share a signature, so steering decisions keyed
    by it (the audit's stickiness check) distinguish liveness views
    without storing the sets. *)
