(** Undirected weighted graphs with dense integer node ids.

    Routers are nodes [0 .. n-1]; links carry a positive OSPF-style
    cost.  The structure is append-only: experiments build a topology
    once and never mutate it afterwards, so adjacency is stored as
    plain lists frozen into arrays on demand. *)

type edge = { dst : int; cost : float }

type t

val create : int -> t
(** [create n] makes a graph with [n] nodes and no edges. *)

val node_count : t -> int
val edge_count : t -> int
(** Number of undirected edges. *)

val add_edge : t -> int -> int -> float -> unit
(** [add_edge g u v cost] inserts the undirected link [u -- v].
    Raises [Invalid_argument] on self-loops, out-of-range nodes,
    non-positive costs, or duplicate links. *)

val has_edge : t -> int -> int -> bool
val cost : t -> int -> int -> float option

val neighbors : t -> int -> edge list
(** Adjacency of a node, in insertion order. *)

val degree : t -> int -> int

val edges : t -> (int * int * float) list
(** Every undirected edge once, as [(u, v, cost)] with [u < v]. *)

val is_connected : t -> bool

val pp : Format.formatter -> t -> unit
