lib/policy/rule.mli: Action Descriptor Format Netpkt
